"""Reveal-sequence generation: the single implementation behind every workload.

This module owns the generators that used to live in
:mod:`repro.graphs.generators` (which is now a thin adapter re-exporting
them), plus the composable fleet builder the scenario registry is built on.
The moved functions are **behaviour-identical** to their previous versions —
same signatures, same order of :class:`random.Random` draws — so every
seeded workload of experiments E1–E10 is bit-identical to what it was before
the workloads subsystem existed (guarded by golden fingerprint tests).

Composable pieces (used by :mod:`repro.workloads.registry`):

* :func:`clique_component_steps` / :func:`line_component_steps` — the reveal
  steps of one component of a fleet,
* :func:`composed_sequences` — assemble a mixed fleet of clique and line
  components into per-kind reveal sequences under a
  :class:`~repro.workloads.orders.MergeOrderPolicy`.
"""

from __future__ import annotations

import random
from typing import Hashable, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.errors import ReproError
from repro.graphs.reveal import (
    CliqueRevealSequence,
    GraphKind,
    LineRevealSequence,
    RevealSequence,
    RevealStep,
)

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids an import cycle
    from repro.workloads.orders import MergeOrderPolicy

Node = Hashable


def check_counts(num_nodes: int, num_final_components: int) -> None:
    """Validate a node budget / final-component-count pair."""
    if num_nodes < 1:
        raise ReproError("generators need at least one node")
    if num_final_components < 1 or num_final_components > num_nodes:
        raise ReproError(
            f"cannot split {num_nodes} nodes into {num_final_components} components"
        )


# ----------------------------------------------------------------------
# Clique-merge workloads
# ----------------------------------------------------------------------
def random_clique_merge_sequence(
    num_nodes: int,
    rng: random.Random,
    num_final_components: int = 1,
    size_biased: bool = False,
    nodes: Optional[Sequence[Node]] = None,
) -> CliqueRevealSequence:
    """A random clique-merge reveal sequence.

    Starting from ``num_nodes`` singletons, repeatedly merge two distinct
    components chosen at random until ``num_final_components`` remain.  With
    ``size_biased=True`` the two components are chosen with probability
    proportional to their sizes (each merge picks two random *nodes* in
    distinct components), which produces more skewed merge trees.
    """
    check_counts(num_nodes, num_final_components)
    universe: List[Node] = list(nodes) if nodes is not None else list(range(num_nodes))
    if len(universe) != num_nodes:
        raise ReproError("explicit node list must have num_nodes entries")
    components: List[List[Node]] = [[node] for node in universe]
    steps: List[RevealStep] = []
    while len(components) > num_final_components:
        if size_biased:
            weights = [len(c) for c in components]
            first_index = rng.choices(range(len(components)), weights=weights)[0]
            remaining = [i for i in range(len(components)) if i != first_index]
            rem_weights = [len(components[i]) for i in remaining]
            second_index = rng.choices(remaining, weights=rem_weights)[0]
        else:
            first_index, second_index = rng.sample(range(len(components)), 2)
        first, second = components[first_index], components[second_index]
        steps.append(RevealStep(rng.choice(first), rng.choice(second)))
        merged = first + second
        components = [
            c for i, c in enumerate(components) if i not in (first_index, second_index)
        ]
        components.append(merged)
    return CliqueRevealSequence(universe, steps)


def balanced_clique_merge_sequence(
    num_nodes: int,
    rng: Optional[random.Random] = None,
    nodes: Optional[Sequence[Node]] = None,
) -> CliqueRevealSequence:
    """A tournament-style merge schedule (pairs, then pairs of pairs, …).

    When ``num_nodes`` is a power of two this produces a perfectly balanced
    merge tree; otherwise the last component of a round may stay unmatched for
    one round.  If ``rng`` is given, the pairing within each round is
    shuffled.
    """
    check_counts(num_nodes, 1)
    universe: List[Node] = list(nodes) if nodes is not None else list(range(num_nodes))
    components: List[List[Node]] = [[node] for node in universe]
    steps: List[RevealStep] = []
    while len(components) > 1:
        if rng is not None:
            rng.shuffle(components)
        next_round: List[List[Node]] = []
        for index in range(0, len(components) - 1, 2):
            first, second = components[index], components[index + 1]
            steps.append(RevealStep(first[0], second[0]))
            next_round.append(first + second)
        if len(components) % 2 == 1:
            next_round.append(components[-1])
        components = next_round
    return CliqueRevealSequence(universe, steps)


def growing_clique_sequence(
    num_nodes: int, nodes: Optional[Sequence[Node]] = None
) -> CliqueRevealSequence:
    """One clique that absorbs the remaining singletons one at a time.

    This is the most skewed merge tree; it maximizes the number of requests
    (``n - 1``) touching the same growing component and is the workload on
    which the harmonic-sum argument of Lemma 5 is tight.
    """
    check_counts(num_nodes, 1)
    universe: List[Node] = list(nodes) if nodes is not None else list(range(num_nodes))
    steps = [RevealStep(universe[0], universe[i]) for i in range(1, num_nodes)]
    return CliqueRevealSequence(universe, steps)


def tenant_clique_sequence(
    group_sizes: Sequence[int],
    rng: random.Random,
    interleave: bool = True,
) -> CliqueRevealSequence:
    """Several independent cliques ("tenants") revealed concurrently.

    ``group_sizes`` gives the final clique sizes.  Each tenant's internal
    merges follow a random uniform merge process; with ``interleave=True`` the
    steps of different tenants are interleaved at random (the realistic
    datacenter scenario), otherwise tenants are revealed one after another.
    """
    if not group_sizes or any(size < 1 for size in group_sizes):
        raise ReproError("group sizes must be positive")
    universe: List[Node] = list(range(sum(group_sizes)))
    offset = 0
    per_tenant_steps: List[List[RevealStep]] = []
    for size in group_sizes:
        members = universe[offset : offset + size]
        offset += size
        if size == 1:
            per_tenant_steps.append([])
            continue
        tenant = random_clique_merge_sequence(size, rng, nodes=members)
        per_tenant_steps.append(list(tenant.steps))
    if interleave:
        steps = random_interleave(per_tenant_steps, rng)
    else:
        steps = [step for tenant in per_tenant_steps for step in tenant]
    return CliqueRevealSequence(universe, steps)


# ----------------------------------------------------------------------
# Line-growth workloads
# ----------------------------------------------------------------------
def random_line_sequence(
    num_nodes: int,
    rng: random.Random,
    num_final_components: int = 1,
    sequential: bool = False,
    nodes: Optional[Sequence[Node]] = None,
) -> LineRevealSequence:
    """A random line-growth reveal sequence.

    The final graph is a disjoint union of ``num_final_components`` paths over
    a random permutation of the nodes; the edges are revealed in random order
    (every order is valid: each edge always joins two path endpoints), or in
    path order if ``sequential=True``.
    """
    check_counts(num_nodes, num_final_components)
    universe: List[Node] = list(nodes) if nodes is not None else list(range(num_nodes))
    if len(universe) != num_nodes:
        raise ReproError("explicit node list must have num_nodes entries")
    shuffled = list(universe)
    rng.shuffle(shuffled)
    paths = split_into_paths(shuffled, num_final_components, rng)
    edges: List[Tuple[Node, Node]] = []
    for path in paths:
        edges.extend(zip(path, path[1:]))
    if not sequential:
        rng.shuffle(edges)
    return LineRevealSequence.from_pairs(universe, edges)


def sequential_line_sequence(
    num_nodes: int, nodes: Optional[Sequence[Node]] = None
) -> LineRevealSequence:
    """A single path over the given nodes, revealed left to right."""
    check_counts(num_nodes, 1)
    universe: List[Node] = list(nodes) if nodes is not None else list(range(num_nodes))
    edges = list(zip(universe, universe[1:]))
    return LineRevealSequence.from_pairs(universe, edges)


def pipeline_line_sequence(
    pipeline_sizes: Sequence[int],
    rng: random.Random,
    interleave: bool = True,
) -> LineRevealSequence:
    """Several independent pipelines (paths) revealed concurrently.

    Mirrors :func:`tenant_clique_sequence` for the line topology: each
    pipeline's edges are revealed in random order and the pipelines are
    interleaved at random unless ``interleave=False``.
    """
    if not pipeline_sizes or any(size < 1 for size in pipeline_sizes):
        raise ReproError("pipeline sizes must be positive")
    universe: List[Node] = list(range(sum(pipeline_sizes)))
    offset = 0
    per_pipeline_steps: List[List[RevealStep]] = []
    for size in pipeline_sizes:
        members = universe[offset : offset + size]
        offset += size
        if size == 1:
            per_pipeline_steps.append([])
            continue
        per_pipeline_steps.append(line_component_steps(members, rng))
    if interleave:
        steps = random_interleave(per_pipeline_steps, rng)
    else:
        steps = [step for pipeline in per_pipeline_steps for step in pipeline]
    return LineRevealSequence(universe, steps)


# ----------------------------------------------------------------------
# Composable fleet pieces
# ----------------------------------------------------------------------
def clique_component_steps(
    members: Sequence[Node], rng: random.Random
) -> List[RevealStep]:
    """The reveal steps of one tenant clique (uniform random merge process)."""
    if len(members) < 2:
        return []
    return list(random_clique_merge_sequence(len(members), rng, nodes=members).steps)


def line_component_steps(
    members: Sequence[Node], rng: random.Random
) -> List[RevealStep]:
    """The reveal steps of one pipeline: a random path, edges in random order."""
    if len(members) < 2:
        return []
    order = list(members)
    rng.shuffle(order)
    edges = list(zip(order, order[1:]))
    rng.shuffle(edges)
    return [RevealStep(u, v) for u, v in edges]


def composed_sequences(
    fleet: Sequence[Tuple[GraphKind, int]],
    order: "MergeOrderPolicy",
    rng: random.Random,
) -> List[RevealSequence]:
    """Assemble a fleet of clique and line components into reveal sequences.

    ``fleet`` lists ``(kind, size)`` per component; nodes ``0 … n-1`` are
    assigned to components in fleet order.  Because the paper's request
    model requires each chain of graphs to be all-cliques or all-lines, the
    fleet is grouped by kind: the result has one
    :class:`~repro.graphs.reveal.CliqueRevealSequence` over the clique
    components' nodes and/or one
    :class:`~repro.graphs.reveal.LineRevealSequence` over the line
    components' nodes, each internally interleaved by ``order``.
    """
    if not fleet:
        raise ReproError("a fleet needs at least one component")
    if any(size < 1 for size in (size for _, size in fleet)):
        raise ReproError("fleet component sizes must be positive")
    offset = 0
    per_kind_nodes = {GraphKind.CLIQUES: [], GraphKind.LINES: []}
    per_kind_groups = {GraphKind.CLIQUES: [], GraphKind.LINES: []}
    for kind, size in fleet:
        members = list(range(offset, offset + size))
        offset += size
        per_kind_nodes[kind].extend(members)
        if kind is GraphKind.CLIQUES:
            per_kind_groups[kind].append(clique_component_steps(members, rng))
        else:
            per_kind_groups[kind].append(line_component_steps(members, rng))
    sequences: List[RevealSequence] = []
    for kind, sequence_type in (
        (GraphKind.CLIQUES, CliqueRevealSequence),
        (GraphKind.LINES, LineRevealSequence),
    ):
        if not per_kind_nodes[kind]:
            continue
        steps = order.interleave(per_kind_groups[kind], rng)
        sequences.append(sequence_type(per_kind_nodes[kind], steps))
    return sequences


# ----------------------------------------------------------------------
# Interleaving helpers
# ----------------------------------------------------------------------
def split_into_paths(
    shuffled: Sequence[Node], num_paths: int, rng: random.Random
) -> List[List[Node]]:
    """Split a node sequence into ``num_paths`` non-empty consecutive chunks."""
    n = len(shuffled)
    if num_paths == 1:
        return [list(shuffled)]
    cut_points = sorted(rng.sample(range(1, n), num_paths - 1))
    paths: List[List[Node]] = []
    previous = 0
    for cut in cut_points + [n]:
        paths.append(list(shuffled[previous:cut]))
        previous = cut
    return paths


def weighted_interleave(
    groups: Sequence[Sequence[RevealStep]],
    rng: random.Random,
    weight_of,
    burst_length: int = 1,
) -> List[RevealStep]:
    """Interleave step lists under a pluggable component-weight function.

    ``weight_of(index, remaining)`` gives the selection weight of component
    ``index`` with ``remaining`` pending steps; each pick emits up to
    ``burst_length`` consecutive steps of the chosen component.  Every
    merge-order policy (uniform, Zipf, bursty) is this loop with a different
    weight function, so the reveal view and the traffic view can never
    diverge on the interleaving mechanics.
    """
    indices = [0] * len(groups)
    remaining = [len(group) for group in groups]
    steps: List[RevealStep] = []
    while sum(remaining) > 0:
        candidates = [i for i, count in enumerate(remaining) if count > 0]
        choice = rng.choices(
            candidates, weights=[weight_of(i, remaining[i]) for i in candidates]
        )[0]
        burst = min(burst_length, remaining[choice])
        for _ in range(burst):
            steps.append(groups[choice][indices[choice]])
            indices[choice] += 1
            remaining[choice] -= 1
    return steps


def random_interleave(
    groups: Sequence[Sequence[RevealStep]], rng: random.Random
) -> List[RevealStep]:
    """Interleave several step lists, preserving the order within each list."""
    return weighted_interleave(
        groups, rng, lambda index, remaining: remaining
    )
