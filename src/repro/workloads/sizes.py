"""Component-size distributions for composing scenario fleets.

A scenario's fleet is described by the sizes of its final components
(tenant groups, pipelines).  A :class:`SizeDistribution` turns either a
*node budget* (:meth:`~SizeDistribution.sample`: split ``total_nodes``
nodes into components) or a *component budget*
(:meth:`~SizeDistribution.sample_count`: draw exactly ``num_components``
sizes) into a concrete size list, deterministically from the provided
:class:`random.Random`.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ReproError


class SizeDistribution(abc.ABC):
    """How large the final components of a fleet are."""

    @abc.abstractmethod
    def sample(self, total_nodes: int, rng: random.Random) -> List[int]:
        """Component sizes that sum exactly to ``total_nodes``."""

    @abc.abstractmethod
    def sample_count(self, num_components: int, rng: random.Random) -> List[int]:
        """Exactly ``num_components`` component sizes (sum unconstrained)."""

    def describe(self) -> str:
        """One-line human-readable description for catalogs."""
        return type(self).__name__


@dataclass(frozen=True)
class FixedSizes(SizeDistribution):
    """Every component has the same size (a remainder joins the last one)."""

    component_size: int

    def __post_init__(self) -> None:
        if self.component_size < 1:
            raise ReproError("component size must be a positive integer")

    def sample(self, total_nodes: int, rng: random.Random) -> List[int]:
        if total_nodes < 1:
            raise ReproError("size distributions need a positive node budget")
        count, remainder = divmod(total_nodes, self.component_size)
        if count == 0:
            return [total_nodes]
        sizes = [self.component_size] * count
        sizes[-1] += remainder
        return sizes

    def sample_count(self, num_components: int, rng: random.Random) -> List[int]:
        if num_components < 1:
            raise ReproError("size distributions need a positive component budget")
        return [self.component_size] * num_components

    def describe(self) -> str:
        return f"fixed size {self.component_size}"


@dataclass(frozen=True)
class HeavyTailedSizes(SizeDistribution):
    """Pareto-tailed component sizes (a few large tenants, many small ones).

    Sizes are ``min_size - 1 + ceil(Pareto(alpha))`` draws, optionally capped
    at ``max_size``; smaller ``alpha`` means a heavier tail.  Sampling under
    a node budget clips the last component so sizes always sum exactly to
    the budget (and merges a sub-``min_size`` remainder into the last
    component).
    """

    alpha: float = 1.6
    min_size: int = 2
    max_size: Optional[int] = None

    def __post_init__(self) -> None:
        if self.alpha <= 0:
            raise ReproError("the Pareto tail exponent must be positive")
        if self.min_size < 1:
            raise ReproError("the minimum component size must be positive")
        if self.max_size is not None and self.max_size < self.min_size:
            raise ReproError("max_size must be at least min_size")

    def _draw(self, rng: random.Random) -> int:
        size = self.min_size - 1 + int(rng.paretovariate(self.alpha))
        size = max(size, self.min_size)
        if self.max_size is not None:
            size = min(size, self.max_size)
        return size

    def sample(self, total_nodes: int, rng: random.Random) -> List[int]:
        if total_nodes < 1:
            raise ReproError("size distributions need a positive node budget")
        sizes: List[int] = []
        remaining = total_nodes
        while remaining > 0:
            size = min(self._draw(rng), remaining)
            if remaining - size < self.min_size and remaining - size > 0:
                # A leftover smaller than min_size would be an invalid
                # component; fold it into this one instead.
                size = remaining
            sizes.append(size)
            remaining -= size
        return sizes

    def sample_count(self, num_components: int, rng: random.Random) -> List[int]:
        if num_components < 1:
            raise ReproError("size distributions need a positive component budget")
        return [self._draw(rng) for _ in range(num_components)]

    def describe(self) -> str:
        cap = f", cap {self.max_size}" if self.max_size is not None else ""
        return f"heavy-tailed (alpha={self.alpha}, min {self.min_size}{cap})"


@dataclass(frozen=True)
class SingleComponent(SizeDistribution):
    """The whole node budget forms one component."""

    def sample(self, total_nodes: int, rng: random.Random) -> List[int]:
        if total_nodes < 1:
            raise ReproError("size distributions need a positive node budget")
        return [total_nodes]

    def sample_count(self, num_components: int, rng: random.Random) -> List[int]:
        raise ReproError(
            "SingleComponent has no per-component size; sample by node budget"
        )

    def describe(self) -> str:
        return "single component"
