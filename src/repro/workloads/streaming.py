"""Streamed request generation for datacenter-scale virtual-network traffic.

The request generators here are the single implementation behind
:mod:`repro.vnet.traffic` (now a thin adapter) **and** the scenario
registry's streams.  They are plain generators: requests are produced one at
a time, so a trace of millions of requests over thousands of tenants is
consumed in memory bounded by the consumer's batch size — nothing ever
materializes the full request list.

Two weighting schemes select which component a request lands in:

* ``"pairs"`` — probability proportional to the component's number of node
  pairs (the historical :func:`repro.vnet.traffic.tenant_traffic`
  behaviour; for pipelines this degenerates to a uniform edge choice),
* ``"zipf"`` — Zipf-skewed component popularity (component ``i`` has weight
  ``(i+1)^-s``), the realistic skewed-tenant shape of experiment E12.

The generator bodies reproduce the exact :class:`random.Random` call
sequence of the pre-subsystem traffic module, so the adapters stay
bit-identical for every seed (guarded by golden fingerprint tests).
"""

from __future__ import annotations

import itertools
import random
from typing import TYPE_CHECKING, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.graphs.components import DisjointSetForest
from repro.graphs.line_forest import LineForest
from repro.graphs.reveal import GraphKind, RevealStep
from repro.workloads.base import Node, Request, RequestStream

if TYPE_CHECKING:  # import would cycle through repro.vnet at runtime
    from repro.vnet.traffic import TrafficTrace

WEIGHTINGS = ("pairs", "zipf")


def split_groups(group_sizes: Sequence[int]) -> List[List[Node]]:
    """Assign nodes ``0 … n-1`` to components of the given sizes, in order."""
    if not group_sizes or any(size < 2 for size in group_sizes):
        raise ReproError("every traffic component needs at least two virtual nodes")
    nodes: List[Node] = list(range(sum(group_sizes)))
    groups: List[List[Node]] = []
    offset = 0
    for size in group_sizes:
        groups.append(nodes[offset : offset + size])
        offset += size
    return groups


def pair_count_weights(groups: Sequence[Sequence[Node]]) -> List[int]:
    """Component weight = number of node pairs inside the component."""
    return [len(group) * (len(group) - 1) // 2 for group in groups]


def zipf_weights(num_groups: int, exponent: float = 1.1) -> List[float]:
    """Zipf popularity weights: component ``i`` gets ``(i+1)^-exponent``."""
    if exponent <= 0:
        raise ReproError("the Zipf exponent must be positive")
    return [(index + 1) ** -exponent for index in range(num_groups)]


def _resolve_weights(
    groups: Sequence[Sequence[Node]],
    weighting: str,
    zipf_exponent: float,
    edge_counts: bool = False,
) -> Sequence[float]:
    if weighting == "pairs":
        if edge_counts:
            return [len(group) - 1 for group in groups]
        return pair_count_weights(groups)
    if weighting == "zipf":
        return zipf_weights(len(groups), zipf_exponent)
    raise ReproError(
        f"unknown traffic weighting {weighting!r}; choose one of {list(WEIGHTINGS)}"
    )


# ----------------------------------------------------------------------
# Request generators (lazy)
# ----------------------------------------------------------------------
def iter_tenant_requests(
    groups: Sequence[Sequence[Node]],
    weights: Sequence[float],
    num_requests: int,
    rng: random.Random,
) -> Iterator[Request]:
    """Lazily draw intra-tenant (clique) requests, one group pick per request.

    Identical draw order to the historical ``tenant_traffic`` loop: one
    weighted group choice, then a uniform node pair inside the group.  The
    cumulative weights are accumulated once instead of per request —
    ``random.choices`` consumes the same random draws either way, so the
    stream stays bit-identical while a thousands-of-tenants fleet costs
    ``O(log groups)`` per request instead of ``O(groups)``.
    """
    cumulative = list(itertools.accumulate(weights))
    for _ in range(num_requests):
        group = rng.choices(groups, cum_weights=cumulative)[0]
        u, v = rng.sample(group, 2)
        yield (u, v)


def iter_pipeline_requests(
    edges: Sequence[Request],
    num_requests: int,
    rng: random.Random,
) -> Iterator[Request]:
    """Lazily draw pipeline (line-edge) requests, uniform over ``edges``.

    Identical draw order to the historical ``pipeline_traffic`` loop.
    """
    for _ in range(num_requests):
        yield rng.choice(edges)


def iter_weighted_pipeline_requests(
    edges_by_group: Sequence[Sequence[Request]],
    weights: Sequence[float],
    num_requests: int,
    rng: random.Random,
) -> Iterator[Request]:
    """Lazily draw pipeline requests with per-pipeline popularity weights."""
    cumulative = list(itertools.accumulate(weights))
    for _ in range(num_requests):
        group = rng.choices(edges_by_group, cum_weights=cumulative)[0]
        yield rng.choice(group)


def pipeline_edges(groups: Sequence[Sequence[Node]]) -> List[Request]:
    """The hidden pipeline edges (consecutive members of each group)."""
    edges: List[Request] = []
    for members in groups:
        edges.extend(zip(members, members[1:]))
    return edges


# ----------------------------------------------------------------------
# Stream constructors
# ----------------------------------------------------------------------
def tenant_request_stream(
    group_sizes: Sequence[int],
    num_requests: int,
    seed: object,
    weighting: str = "pairs",
    zipf_exponent: float = 1.1,
) -> RequestStream:
    """A re-iterable stream of tenant-clique traffic over ``group_sizes``."""
    if num_requests < 1:
        raise ReproError("num_requests must be positive")
    groups = split_groups(group_sizes)
    weights = _resolve_weights(groups, weighting, zipf_exponent)

    def factory() -> Iterator[Request]:
        rng = random.Random(f"{seed}|tenant-traffic")
        return iter_tenant_requests(groups, weights, num_requests, rng)

    return RequestStream(
        virtual_nodes=tuple(range(sum(group_sizes))),
        num_requests=num_requests,
        kind=GraphKind.CLIQUES,
        factory=factory,
    )


def pipeline_request_stream(
    pipeline_sizes: Sequence[int],
    num_requests: int,
    seed: object,
    weighting: str = "pairs",
    zipf_exponent: float = 1.1,
) -> RequestStream:
    """A re-iterable stream of pipeline traffic over ``pipeline_sizes``."""
    if num_requests < 1:
        raise ReproError("num_requests must be positive")
    groups = split_groups(pipeline_sizes)
    edges_by_group = [list(zip(members, members[1:])) for members in groups]
    weights = _resolve_weights(groups, weighting, zipf_exponent, edge_counts=True)

    def factory() -> Iterator[Request]:
        rng = random.Random(f"{seed}|pipeline-traffic")
        if weighting == "pairs":
            # Uniform over all hidden edges — the historical behaviour.
            return iter_pipeline_requests(
                [edge for group in edges_by_group for edge in group],
                num_requests,
                rng,
            )
        return iter_weighted_pipeline_requests(
            edges_by_group, weights, num_requests, rng
        )

    return RequestStream(
        virtual_nodes=tuple(range(sum(pipeline_sizes))),
        num_requests=num_requests,
        kind=GraphKind.LINES,
        factory=factory,
    )


def mixed_request_stream(
    clique_sizes: Sequence[int],
    pipeline_sizes: Sequence[int],
    num_requests: int,
    seed: object,
    weighting: str = "pairs",
    zipf_exponent: float = 1.1,
) -> RequestStream:
    """A stream mixing tenant-clique and pipeline traffic in one fleet.

    Clique components occupy nodes ``0 … c-1``, pipelines the rest.  Each
    request first picks a component (over the whole fleet, weighted) and
    then a pair / edge inside it.  Mixed streams have ``kind=None``: they
    drive request-level consumers (controllers, statistics) but cannot be
    materialized into a single kind-pure reveal sequence.
    """
    if num_requests < 1:
        raise ReproError("num_requests must be positive")
    clique_groups = split_groups(clique_sizes) if clique_sizes else []
    offset = sum(clique_sizes)
    pipeline_groups = [
        [node + offset for node in group] for group in split_groups(pipeline_sizes)
    ] if pipeline_sizes else []
    if not clique_groups and not pipeline_groups:
        raise ReproError("a mixed stream needs at least one component")
    components: List[Tuple[str, Sequence[Node], Sequence[Request]]] = [
        ("clique", group, ()) for group in clique_groups
    ] + [
        ("line", group, tuple(zip(group, group[1:]))) for group in pipeline_groups
    ]
    all_groups = [group for _, group, _ in components]
    if weighting == "pairs":
        weights: Sequence[float] = [
            len(group) * (len(group) - 1) // 2 if kind == "clique" else len(group) - 1
            for kind, group, _ in components
        ]
    else:
        weights = _resolve_weights(all_groups, weighting, zipf_exponent)
    num_nodes = sum(clique_sizes) + sum(pipeline_sizes)

    cumulative = list(itertools.accumulate(weights))

    def factory() -> Iterator[Request]:
        rng = random.Random(f"{seed}|mixed-traffic")
        for _ in range(num_requests):
            kind, group, edges = rng.choices(components, cum_weights=cumulative)[0]
            if kind == "clique":
                u, v = rng.sample(list(group), 2)
                yield (u, v)
            else:
                yield rng.choice(edges)

    return RequestStream(
        virtual_nodes=tuple(range(num_nodes)),
        num_requests=num_requests,
        kind=None,
        factory=factory,
    )


# ----------------------------------------------------------------------
# Induced reveals and materialization
# ----------------------------------------------------------------------
def iter_induced_reveals(
    stream: RequestStream,
) -> Iterator[Tuple[Request, Optional[RevealStep]]]:
    """Replay a kind-pure stream, tagging each request that reveals the pattern.

    Yields ``(request, reveal-step-or-None)`` pairs: a request joining two
    previously separate components of the hidden pattern carries the
    :class:`~repro.graphs.reveal.RevealStep` it induces.  Memory is ``O(n)``
    (one union-find / line forest over the virtual nodes), independent of
    the stream length.
    """
    if stream.kind is None:
        raise ReproError("a mixed stream induces no single kind-pure reveal sequence")
    if stream.kind is GraphKind.CLIQUES:
        components = DisjointSetForest(stream.virtual_nodes)
        for u, v in stream:
            if not components.connected(u, v):
                components.union(u, v)
                yield (u, v), RevealStep(u, v)
            else:
                yield (u, v), None
    else:
        revealed = LineForest(stream.virtual_nodes)
        for u, v in stream:
            if not revealed.same_component(u, v):
                revealed.add_edge(u, v)
                yield (u, v), RevealStep(u, v)
            else:
                yield (u, v), None


def stream_statistics(
    stream: RequestStream, batch_size: int = 1024
) -> Tuple[int, Optional[int]]:
    """Consume a stream in batches and return ``(requests, induced reveals)``.

    The reveal count is ``None`` for mixed streams (no single kind-pure
    hidden pattern).  Peak memory is bounded by ``batch_size`` plus the
    ``O(n)`` pattern-tracking state — this is the memory-bounded way to
    summarize a datacenter-scale stream, used by ``scenarios run``.
    """
    if stream.kind is None:
        tracker = None
    elif stream.kind is GraphKind.CLIQUES:
        tracker = DisjointSetForest(stream.virtual_nodes)
    else:
        tracker = LineForest(stream.virtual_nodes)
    num_requests = 0
    reveals: Optional[int] = None if tracker is None else 0
    for batch in stream.batches(batch_size):
        num_requests += len(batch)
        if tracker is None:
            continue
        for u, v in batch:
            if stream.kind is GraphKind.CLIQUES:
                if not tracker.connected(u, v):
                    tracker.union(u, v)
                    reveals += 1
            elif not tracker.same_component(u, v):
                tracker.add_edge(u, v)
                reveals += 1
    return num_requests, reveals


def materialize_trace(stream: RequestStream) -> "TrafficTrace":
    """Materialize a kind-pure stream into a full TrafficTrace.

    Intended for small workloads and equivalence tests; datacenter-scale
    consumers should iterate the stream directly.
    """
    from repro.graphs.reveal import CliqueRevealSequence, LineRevealSequence
    from repro.vnet.traffic import TrafficTrace

    requests: List[Request] = []
    reveal_steps: List[RevealStep] = []
    for request, reveal in iter_induced_reveals(stream):
        requests.append(request)
        if reveal is not None:
            reveal_steps.append(reveal)
    if stream.kind is GraphKind.CLIQUES:
        sequence = CliqueRevealSequence(stream.virtual_nodes, reveal_steps)
    else:
        sequence = LineRevealSequence(stream.virtual_nodes, reveal_steps)
    return TrafficTrace(
        kind=stream.kind,
        virtual_nodes=stream.virtual_nodes,
        requests=tuple(requests),
        sequence=sequence,
    )
