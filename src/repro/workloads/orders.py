"""Merge-order policies: how a fleet's reveal steps interleave over time.

Each component of a fleet (a tenant's clique merges, a pipeline's edge
reveals) produces its own ordered step list; a :class:`MergeOrderPolicy`
decides the global order in which the steps of different components arrive.
The policies model the traffic shapes that motivate the paper's
applications:

* :class:`UniformInterleave` — every pending step equally likely next (the
  baseline used by ``tenant_clique_sequence`` / ``pipeline_line_sequence``),
* :class:`ZipfInterleave` — skewed component popularity: low-indexed
  components reveal (and, in the traffic view, talk) far more often,
* :class:`BurstyInterleave` — temporal locality: one component emits a burst
  of consecutive steps before the spotlight moves on (pipelines deploying
  stage by stage),
* :class:`SequentialOrder` — components reveal strictly one after another.

Policies are stateless; all randomness comes from the caller's
:class:`random.Random`.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import List, Sequence

from repro.errors import ReproError
from repro.graphs.reveal import RevealStep


class MergeOrderPolicy(abc.ABC):
    """How the per-component step lists of a fleet interleave."""

    @abc.abstractmethod
    def interleave(
        self, groups: Sequence[Sequence[RevealStep]], rng: random.Random
    ) -> List[RevealStep]:
        """One global step order preserving each component's internal order."""

    def describe(self) -> str:
        """One-line human-readable description for catalogs."""
        return type(self).__name__


@dataclass(frozen=True)
class UniformInterleave(MergeOrderPolicy):
    """Every pending step is equally likely to arrive next."""

    def interleave(
        self, groups: Sequence[Sequence[RevealStep]], rng: random.Random
    ) -> List[RevealStep]:
        from repro.workloads.generation import random_interleave

        return random_interleave(groups, rng)

    def describe(self) -> str:
        return "uniform interleave"


@dataclass(frozen=True)
class ZipfInterleave(MergeOrderPolicy):
    """Zipf-skewed component popularity (component ``i`` has weight ``(i+1)^-s``).

    The popularity weights come from the same
    :func:`repro.workloads.streaming.zipf_weights` formula the traffic view
    uses, so the reveal order and the request stream skew identically.
    """

    exponent: float = 1.1

    def __post_init__(self) -> None:
        if self.exponent <= 0:
            raise ReproError("the Zipf exponent must be positive")

    def interleave(
        self, groups: Sequence[Sequence[RevealStep]], rng: random.Random
    ) -> List[RevealStep]:
        from repro.workloads.generation import weighted_interleave
        from repro.workloads.streaming import zipf_weights

        popularity = zipf_weights(len(groups), self.exponent)
        return weighted_interleave(
            groups, rng, lambda index, remaining: popularity[index]
        )

    def describe(self) -> str:
        return f"Zipf-skewed interleave (s={self.exponent})"


@dataclass(frozen=True)
class BurstyInterleave(MergeOrderPolicy):
    """Temporal locality: bursts of consecutive steps from one component."""

    burst_length: int = 8

    def __post_init__(self) -> None:
        if self.burst_length < 1:
            raise ReproError("the burst length must be a positive integer")

    def interleave(
        self, groups: Sequence[Sequence[RevealStep]], rng: random.Random
    ) -> List[RevealStep]:
        from repro.workloads.generation import weighted_interleave

        return weighted_interleave(
            groups,
            rng,
            lambda index, remaining: remaining,
            burst_length=self.burst_length,
        )

    def describe(self) -> str:
        return f"bursty interleave (bursts of {self.burst_length})"


@dataclass(frozen=True)
class SequentialOrder(MergeOrderPolicy):
    """Components reveal one after another, in fleet order."""

    def interleave(
        self, groups: Sequence[Sequence[RevealStep]], rng: random.Random
    ) -> List[RevealStep]:
        return [step for group in groups for step in group]

    def describe(self) -> str:
        return "sequential (component after component)"
