"""Scenario-generation subsystem: composable, seedable, streaming workloads.

The paper's experiments reveal cliques and lines under hand-rolled orders;
its motivating applications (virtual network embedding, dynamic MinLA) face
*real traffic* — skewed tenant popularity, bursty pipelines, fleets mixing
both patterns.  This package makes such workloads first-class:

* :mod:`repro.workloads.base` — the :class:`Scenario` protocol and lazy,
  re-iterable :class:`RequestStream` objects,
* :mod:`repro.workloads.sizes` — component-size distributions (fixed,
  heavy-tailed, single-component),
* :mod:`repro.workloads.orders` — merge-order policies (uniform, Zipf,
  bursty, sequential),
* :mod:`repro.workloads.generation` — the single implementation behind
  every reveal-sequence generator (``repro.graphs.generators`` is a thin
  adapter over it),
* :mod:`repro.workloads.streaming` — lazy request generation behind
  ``repro.vnet.traffic`` and the datacenter-scale E12 experiment,
* :mod:`repro.workloads.registry` — the named catalog behind
  ``python -m repro scenarios list/run`` and ``REPRO_SCENARIO``.

Every scenario is a pure function of ``(parameters, seed)``: same seed,
same workload — bit-identical across worker counts and across streaming
versus materialized generation.
"""

from repro.workloads.base import (
    RequestStream,
    SCALE_NAMES,
    Scenario,
    ScenarioParams,
    check_scale,
)
from repro.workloads.discovery import (
    SCENARIO_FILE_NAME,
    autodiscover_scenarios,
    load_scenario_file,
    scenario_from_recipe,
)
from repro.workloads.orders import (
    BurstyInterleave,
    MergeOrderPolicy,
    SequentialOrder,
    UniformInterleave,
    ZipfInterleave,
)
from repro.workloads.registry import (
    SCENARIO_ENV_VAR,
    ComposedScenario,
    DatacenterScenario,
    all_scenarios,
    default_scenario_name,
    get_scenario,
    register,
    scenario_names,
)
from repro.workloads.sizes import (
    FixedSizes,
    HeavyTailedSizes,
    SingleComponent,
    SizeDistribution,
)
from repro.workloads.streaming import (
    iter_induced_reveals,
    materialize_trace,
    mixed_request_stream,
    pipeline_request_stream,
    stream_statistics,
    tenant_request_stream,
)

__all__ = [
    "BurstyInterleave",
    "ComposedScenario",
    "DatacenterScenario",
    "FixedSizes",
    "HeavyTailedSizes",
    "MergeOrderPolicy",
    "RequestStream",
    "SCALE_NAMES",
    "SCENARIO_ENV_VAR",
    "SCENARIO_FILE_NAME",
    "Scenario",
    "ScenarioParams",
    "SequentialOrder",
    "SingleComponent",
    "SizeDistribution",
    "UniformInterleave",
    "ZipfInterleave",
    "all_scenarios",
    "autodiscover_scenarios",
    "check_scale",
    "default_scenario_name",
    "get_scenario",
    "iter_induced_reveals",
    "load_scenario_file",
    "materialize_trace",
    "mixed_request_stream",
    "pipeline_request_stream",
    "register",
    "scenario_from_recipe",
    "scenario_names",
    "stream_statistics",
    "tenant_request_stream",
]
