"""The :class:`Scenario` protocol and lazily generated request streams.

A *scenario* is a named, reproducible description of a workload.  Every
scenario offers the same two views:

* :meth:`Scenario.reveal_sequences` — the online learning MinLA view: one or
  more validated reveal sequences (a mixed fleet yields one sequence per
  graph kind, since the paper's model requires each chain of graphs to be
  all-cliques or all-lines).
* :meth:`Scenario.request_stream` — the virtual-network view: a lazy stream
  of point-to-point communication requests whose hidden pattern is the same
  fleet of cliques and lines.

Both views are pure functions of ``(parameters, seed)``: generating a
scenario twice with the same seed yields bit-identical sequences and
streams, whatever the worker count or batching.  Streams are *re-iterable* —
every iteration restarts the deterministic generator from the seed — and
never materialize the request list, so datacenter-scale traffic (thousands
of tenants, millions of requests) runs in memory bounded by the consumer's
batch size.
"""

from __future__ import annotations

import abc
import itertools
from dataclasses import dataclass, field
from typing import Callable, Hashable, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ReproError
from repro.graphs.reveal import GraphKind, RevealSequence

Node = Hashable
Request = Tuple[Node, Node]

#: The three workload scales understood by scenarios (mirrors
#: ``repro.experiments.runner.ExperimentScale`` without importing it, so the
#: workloads package stays dependency-free of the experiment harness).
SCALE_NAMES = ("smoke", "bench", "full")


@dataclass(frozen=True)
class ScenarioParams:
    """Per-scale generation parameters of one scenario."""

    num_nodes: int
    num_requests: int


def check_scale(scale: str) -> str:
    """Validate a scale name (``smoke`` / ``bench`` / ``full``)."""
    if scale not in SCALE_NAMES:
        raise ReproError(
            f"unknown workload scale {scale!r}; choose one of {list(SCALE_NAMES)}"
        )
    return scale


@dataclass(frozen=True)
class RequestStream:
    """A lazy, re-iterable, deterministic stream of communication requests.

    The stream never stores its requests: ``factory`` builds a fresh
    generator (seeded identically) on every iteration, so two passes over
    the same stream — or a batched and an unbatched pass — see bit-identical
    requests while peak memory stays bounded by the consumer's batch size.

    ``kind`` names the hidden pattern when it is kind-pure (all tenant
    cliques or all pipelines); mixed fleets carry ``kind=None`` and cannot
    be materialized into a single :class:`~repro.vnet.traffic.TrafficTrace`.
    """

    virtual_nodes: Tuple[Node, ...]
    num_requests: int
    kind: Optional[GraphKind]
    factory: Callable[[], Iterator[Request]] = field(repr=False)

    def __post_init__(self) -> None:
        if self.num_requests < 1:
            raise ReproError("a request stream needs at least one request")
        if len(set(self.virtual_nodes)) != len(self.virtual_nodes):
            raise ReproError("request stream node universe contains duplicates")

    @property
    def num_nodes(self) -> int:
        """Number of virtual nodes of the hidden pattern."""
        return len(self.virtual_nodes)

    def __iter__(self) -> Iterator[Request]:
        return itertools.islice(self.factory(), self.num_requests)

    def batches(self, batch_size: int) -> Iterator[List[Request]]:
        """Yield the stream in lists of at most ``batch_size`` requests.

        The underlying generator is consumed incrementally: at no point are
        more than ``batch_size`` requests buffered.
        """
        if batch_size < 1:
            raise ReproError(f"batch size must be a positive integer, got {batch_size}")
        iterator = iter(self)
        while True:
            batch = list(itertools.islice(iterator, batch_size))
            if not batch:
                return
            yield batch

    def materialize_trace(self):
        """Materialize the stream into a :class:`~repro.vnet.traffic.TrafficTrace`.

        Only valid for kind-pure streams (a mixed fleet's hidden pattern is
        not a single collection of cliques or lines).  Intended for small
        workloads and equivalence tests — datacenter-scale consumers should
        iterate :meth:`batches` instead.
        """
        from repro.workloads.streaming import materialize_trace

        return materialize_trace(self)


class Scenario(abc.ABC):
    """A named, seedable workload: reveal sequences plus a request stream.

    Subclasses must set :attr:`name`, :attr:`description` and
    :attr:`kind_label` (``"cliques"``, ``"lines"`` or ``"mixed"``) and
    implement the two generation methods.  Every method must be a pure
    function of its arguments — scenario objects hold configuration only,
    never random state.
    """

    name: str = "abstract"
    description: str = ""
    kind_label: str = "mixed"

    #: Optional per-scenario node-budget list for the E11 sweep.  ``None``
    #: means "use the sweep's per-scale defaults"; a tuple makes the sweep
    #: measure this scenario at exactly these budgets (its growth curve).
    node_budgets: Optional[Tuple[int, ...]] = None

    #: Per-scale default sizes for ``python -m repro scenarios run``.
    scale_params = {
        "smoke": ScenarioParams(num_nodes=24, num_requests=400),
        "bench": ScenarioParams(num_nodes=64, num_requests=2_000),
        "full": ScenarioParams(num_nodes=128, num_requests=10_000),
    }

    def default_params(self, scale: str) -> ScenarioParams:
        """The scenario's default ``(num_nodes, num_requests)`` at a scale."""
        return self.scale_params[check_scale(scale)]

    def sweep_node_budgets(self, default_budgets: Sequence[int]) -> Tuple[int, ...]:
        """The node budgets the E11 sweep measures this scenario at.

        Scenarios carrying an explicit :attr:`node_budgets` list (built-ins
        or ``.repro-scenarios.toml`` recipes) get their own growth curve;
        everything else follows the sweep's per-scale defaults.  Budgets are
        deduplicated and returned ascending, so the sweep's rows read as a
        growth curve and "the last budget" is always the largest one (the
        per-scenario variance-band population is traced there).
        """
        budgets = self.node_budgets if self.node_budgets else tuple(default_budgets)
        if not budgets:
            raise ReproError(f"scenario {self.name!r} has an empty node-budget list")
        if any(budget < 2 for budget in budgets):
            raise ReproError(
                f"scenario {self.name!r} has node budgets below 2: {list(budgets)}"
            )
        return tuple(sorted(set(budgets)))

    @abc.abstractmethod
    def reveal_sequences(self, num_nodes: int, seed: object) -> List[RevealSequence]:
        """Deterministic reveal sequences over ``num_nodes`` nodes.

        Kind-pure scenarios return one sequence; mixed fleets return one
        sequence per graph kind over disjoint node universes.
        """

    @abc.abstractmethod
    def request_stream(
        self, num_nodes: int, num_requests: int, seed: object
    ) -> RequestStream:
        """A deterministic lazy request stream over the same hidden fleet."""

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"<Scenario {self.name!r} ({self.kind_label})>"
