"""``.repro-scenarios.toml`` discovery: user-defined scenario recipes.

Third-party scenarios have always been able to call
:func:`repro.workloads.register` from Python; this module adds the
configuration-file route: a ``.repro-scenarios.toml`` in the working
directory declares one table per scenario, each composing the same pieces
the built-in catalog uses (size distribution, merge-order policy, traffic
weighting, optional E11 node budgets)::

    [steep-fanout]
    description = "a few giant tenants, uniform reveal order"
    clique_fraction = 1.0
    sizes = "heavy-tailed"
    alpha = 1.2
    min_size = 2
    max_size = 24
    order = "zipf"
    order_exponent = 1.3
    traffic_weighting = "zipf"
    zipf_exponent = 1.2
    node_budgets = [16, 32, 64]

The CLI (and the experiment runner, on every worker) calls
:func:`autodiscover_scenarios` at startup, so discovered recipes appear in
``python -m repro scenarios list`` and are swept by E11 exactly like
built-ins.  Validation follows the ``repro.envconfig`` philosophy: an
unknown key, a mis-typed value or a name clash raises a clear
:class:`~repro.errors.ReproError` — a typo must never silently produce a
different workload than the one the user described.

Parsing uses :mod:`tomllib` where available (Python ≥ 3.11) and falls back
to a small built-in parser covering exactly the subset the recipes need
(tables, scalar keys, flat arrays) — the library adds no dependency either
way.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ReproError
from repro.workloads.orders import (
    BurstyInterleave,
    MergeOrderPolicy,
    SequentialOrder,
    UniformInterleave,
    ZipfInterleave,
)
from repro.workloads.registry import ComposedScenario, _REGISTRY, register
from repro.workloads.sizes import (
    FixedSizes,
    HeavyTailedSizes,
    SingleComponent,
    SizeDistribution,
)

#: File name looked up in the working directory at CLI/worker startup.
SCENARIO_FILE_NAME = ".repro-scenarios.toml"

#: Every key a recipe table may carry.  Anything else raises.
ALLOWED_KEYS = (
    "description",
    "clique_fraction",
    "sizes",
    "component_size",
    "alpha",
    "min_size",
    "max_size",
    "order",
    "order_exponent",
    "burst_length",
    "traffic_weighting",
    "zipf_exponent",
    "node_budgets",
)

SIZE_NAMES = ("single", "fixed", "heavy-tailed")
ORDER_NAMES = ("uniform", "zipf", "bursty", "sequential")
WEIGHTING_NAMES = ("pairs", "zipf")

#: Recipes already loaded this process, keyed by scenario name.  Re-loading
#: an identical recipe is a no-op (workers and repeated CLI entry points
#: re-discover); a *changed* recipe under an existing name raises.
_LOADED_RECIPES: Dict[str, Dict[str, Any]] = {}


# ----------------------------------------------------------------------
# TOML parsing (stdlib where available, minimal fallback below 3.11)
# ----------------------------------------------------------------------
def _parse_scalar(text: str, where: str) -> Any:
    text = text.strip()
    if not text:
        raise ReproError(f"{where}: empty value")
    if (text.startswith('"') and text.endswith('"') and len(text) >= 2) or (
        text.startswith("'") and text.endswith("'") and len(text) >= 2
    ):
        return text[1:-1]
    if text == "true":
        return True
    if text == "false":
        return False
    try:
        return int(text)
    except ValueError:
        pass
    try:
        return float(text)
    except ValueError:
        raise ReproError(f"{where}: cannot parse value {text!r}") from None


def _strip_comment(line: str) -> str:
    quote: Optional[str] = None
    for index, character in enumerate(line):
        if quote is None and character in "\"'":
            quote = character
        elif quote == character:
            quote = None
        elif quote is None and character == "#":
            return line[:index]
    return line


def _parse_toml_fallback(text: str, source: str) -> Dict[str, Dict[str, Any]]:
    """Parse the recipe subset of TOML: tables, scalars, flat arrays."""
    tables: Dict[str, Dict[str, Any]] = {}
    current: Optional[Dict[str, Any]] = None
    for line_number, raw_line in enumerate(text.splitlines(), start=1):
        line = _strip_comment(raw_line).strip()
        where = f"{source}:{line_number}"
        if not line:
            continue
        if line.startswith("[") and line.endswith("]"):
            name = line[1:-1].strip()
            if not name or name.startswith("["):
                raise ReproError(f"{where}: scenario tables must be [name]")
            if name in tables:
                raise ReproError(f"{where}: duplicate scenario table {name!r}")
            current = tables[name] = {}
            continue
        if "=" not in line:
            raise ReproError(f"{where}: expected key = value, got {line!r}")
        if current is None:
            raise ReproError(f"{where}: keys must appear inside a [scenario] table")
        key, _, value_text = line.partition("=")
        key = key.strip()
        value_text = value_text.strip()
        if key in current:
            raise ReproError(f"{where}: duplicate key {key!r}")
        if value_text.startswith("[") and value_text.endswith("]"):
            inner = value_text[1:-1].strip()
            current[key] = (
                [
                    _parse_scalar(element, where)
                    for element in inner.split(",")
                    if element.strip()
                ]
                if inner
                else []
            )
        else:
            current[key] = _parse_scalar(value_text, where)
    return tables


def _parse_toml(text: str, source: str) -> Dict[str, Dict[str, Any]]:
    try:
        import tomllib
    except ImportError:  # pragma: no cover - exercised on Python < 3.11
        return _parse_toml_fallback(text, source)
    try:
        parsed = tomllib.loads(text)
    except tomllib.TOMLDecodeError as exc:
        raise ReproError(f"{source} is not valid TOML: {exc}") from exc
    for name, table in sorted(parsed.items()):
        if not isinstance(table, dict):
            raise ReproError(
                f"{source}: top-level entry {name!r} must be a [scenario] table"
            )
    return parsed


# ----------------------------------------------------------------------
# Recipe validation and scenario construction
# ----------------------------------------------------------------------
def _require(
    recipe: Dict[str, Any],
    key: str,
    types: tuple,
    default: Any,
    where: str,
) -> Any:
    if key not in recipe:
        return default
    value = recipe[key]
    if isinstance(value, bool) or not isinstance(value, types):
        expected = "/".join(t.__name__ for t in types)
        raise ReproError(f"{where}: {key} must be {expected}, got {value!r}")
    return value


def _build_sizes(recipe: Dict[str, Any], where: str) -> SizeDistribution:
    kind = _require(recipe, "sizes", (str,), "single", where)
    if kind not in SIZE_NAMES:
        raise ReproError(
            f"{where}: unknown sizes {kind!r}; choose one of {list(SIZE_NAMES)}"
        )
    if kind == "single":
        return SingleComponent()
    if kind == "fixed":
        return FixedSizes(
            component_size=_require(recipe, "component_size", (int,), 4, where)
        )
    max_size = _require(recipe, "max_size", (int,), None, where)
    return HeavyTailedSizes(
        alpha=float(_require(recipe, "alpha", (int, float), 1.6, where)),
        min_size=_require(recipe, "min_size", (int,), 2, where),
        max_size=max_size,
    )


def _build_order(recipe: Dict[str, Any], where: str) -> MergeOrderPolicy:
    kind = _require(recipe, "order", (str,), "uniform", where)
    if kind not in ORDER_NAMES:
        raise ReproError(
            f"{where}: unknown order {kind!r}; choose one of {list(ORDER_NAMES)}"
        )
    if kind == "uniform":
        return UniformInterleave()
    if kind == "zipf":
        return ZipfInterleave(
            exponent=float(_require(recipe, "order_exponent", (int, float), 1.1, where))
        )
    if kind == "bursty":
        return BurstyInterleave(
            burst_length=_require(recipe, "burst_length", (int,), 8, where)
        )
    return SequentialOrder()


def _build_node_budgets(
    recipe: Dict[str, Any], where: str
) -> Optional[Tuple[int, ...]]:
    budgets = recipe.get("node_budgets")
    if budgets is None:
        return None
    if not isinstance(budgets, list) or not budgets:
        raise ReproError(f"{where}: node_budgets must be a non-empty array of integers")
    for budget in budgets:
        if isinstance(budget, bool) or not isinstance(budget, int) or budget < 2:
            raise ReproError(
                f"{where}: node_budgets entries must be integers >= 2, "
                f"got {budget!r}"
            )
    return tuple(budgets)


def scenario_from_recipe(name: str, recipe: Dict[str, Any], source: str) -> ComposedScenario:
    """Build (and fully validate) one scenario from its recipe table."""
    where = f"{source} [{name}]"
    unknown = sorted(set(recipe) - set(ALLOWED_KEYS))
    if unknown:
        raise ReproError(
            f"{where}: unknown recipe keys {unknown}; "
            f"allowed keys are {sorted(ALLOWED_KEYS)}"
        )
    weighting = _require(recipe, "traffic_weighting", (str,), "pairs", where)
    if weighting not in WEIGHTING_NAMES:
        raise ReproError(
            f"{where}: unknown traffic_weighting {weighting!r}; "
            f"choose one of {list(WEIGHTING_NAMES)}"
        )
    return ComposedScenario(
        name=name,
        description=_require(
            recipe, "description", (str,), f"user scenario from {source}", where
        ),
        clique_fraction=float(
            _require(recipe, "clique_fraction", (int, float), 1.0, where)
        ),
        sizes=_build_sizes(recipe, where),
        order=_build_order(recipe, where),
        traffic_weighting=weighting,
        zipf_exponent=float(
            _require(recipe, "zipf_exponent", (int, float), 1.1, where)
        ),
        node_budgets=_build_node_budgets(recipe, where),
    )


# ----------------------------------------------------------------------
# Loading and registration
# ----------------------------------------------------------------------
def load_scenario_file(path: Union[str, Path]) -> List[ComposedScenario]:
    """Load every recipe of one TOML file into the scenario registry.

    Idempotent per recipe: re-loading an identical recipe (another CLI
    entry point, a pool worker) is a no-op, but a *changed* recipe under an
    already-loaded name — or a name clashing with a built-in scenario —
    raises, because two scenarios answering to one name would make results
    ambiguous.  Returns the scenarios the file defines.
    """
    path = Path(path)
    if not path.exists():
        raise ReproError(f"no such scenario file: {path}")
    tables = _parse_toml(path.read_text(), str(path))
    if not tables:
        raise ReproError(f"{path} defines no scenario tables")
    scenarios: List[ComposedScenario] = []
    for name, recipe in sorted(tables.items()):
        if name in _LOADED_RECIPES:
            if _LOADED_RECIPES[name] == recipe:
                scenarios.append(_REGISTRY[name])  # type: ignore[arg-type]
                continue
            raise ReproError(
                f"{path}: scenario {name!r} was already loaded with a "
                "different recipe; rename one of the two"
            )
        scenario = scenario_from_recipe(name, recipe, str(path))
        if name in _REGISTRY:
            raise ReproError(
                f"{path}: scenario {name!r} clashes with an already "
                "registered scenario; choose a different name"
            )
        register(scenario)
        _LOADED_RECIPES[name] = dict(recipe)
        scenarios.append(scenario)
    return scenarios


def autodiscover_scenarios(directory: Union[str, Path, None] = None) -> List[ComposedScenario]:
    """Load ``.repro-scenarios.toml`` from ``directory`` (default: cwd) if present.

    The missing-file case is the common one and returns an empty list; an
    *invalid* file always raises — a present-but-broken configuration must
    never be silently skipped.
    """
    base = Path(directory) if directory is not None else Path.cwd()
    path = base / SCENARIO_FILE_NAME
    if not path.exists():
        return []
    return load_scenario_file(path)
