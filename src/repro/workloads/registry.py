"""The named scenario registry and the built-in scenario catalog.

Scenarios register under unique names and are looked up by the CLI
(``python -m repro scenarios list/run``), the E11 scenario sweep and the
E12 datacenter case study.  The ``REPRO_SCENARIO`` environment variable
selects a default scenario for ``scenarios run``; like every ``REPRO_*``
override it is validated through :mod:`repro.envconfig` — an unknown name
raises a :class:`~repro.errors.ReproError` listing the registered ones
instead of silently falling back.

The built-in catalog composes the pieces of :mod:`repro.workloads.sizes`
(fixed / heavy-tailed / single-component size distributions),
:mod:`repro.workloads.orders` (uniform / Zipf / bursty / sequential merge
orders) and :mod:`repro.workloads.streaming` (lazy request generation), plus
two replay scenarios built on :mod:`repro.adversary`.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.envconfig import read_env_choice
from repro.errors import ReproError
from repro.graphs.reveal import GraphKind, RevealSequence
from repro.workloads.base import RequestStream, Scenario, ScenarioParams
from repro.workloads.generation import (
    balanced_clique_merge_sequence,
    composed_sequences,
    growing_clique_sequence,
)
from repro.workloads.orders import (
    BurstyInterleave,
    MergeOrderPolicy,
    UniformInterleave,
    ZipfInterleave,
)
from repro.workloads.sizes import (
    HeavyTailedSizes,
    SingleComponent,
    SizeDistribution,
)
from repro.workloads.streaming import (
    mixed_request_stream,
    pipeline_request_stream,
    tenant_request_stream,
)

#: Environment variable naming the default scenario for ``scenarios run``.
SCENARIO_ENV_VAR = "REPRO_SCENARIO"

_REGISTRY: Dict[str, Scenario] = {}


def register(scenario: Scenario) -> Scenario:
    """Add a scenario to the registry (names must be unique)."""
    if not scenario.name or scenario.name == "abstract":
        raise ReproError("scenarios must carry a concrete name")
    if scenario.name in _REGISTRY:
        raise ReproError(f"scenario {scenario.name!r} is already registered")
    _REGISTRY[scenario.name] = scenario
    return scenario


def scenario_names() -> List[str]:
    """The registered scenario names, sorted."""
    return sorted(_REGISTRY)


def all_scenarios() -> List[Scenario]:
    """Every registered scenario, in name order."""
    return [_REGISTRY[name] for name in scenario_names()]


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by name (unknown names raise a clear error)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown scenario {name!r}; choose one of {scenario_names()}"
        ) from None


def default_scenario_name(default: Optional[str] = None) -> Optional[str]:
    """The ``REPRO_SCENARIO`` override, validated against the registry."""
    return read_env_choice(SCENARIO_ENV_VAR, scenario_names(), default=default)


# ----------------------------------------------------------------------
# Composed scenarios
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ComposedScenario(Scenario):
    """A scenario assembled from size / pattern / order / weighting pieces.

    ``clique_fraction`` controls the pattern mix: 1.0 is a clique-only
    fleet, 0.0 line-only, anything in between assigns each component's kind
    by a seeded coin with that bias.
    """

    name: str = "composed"
    description: str = ""
    clique_fraction: float = 1.0
    sizes: SizeDistribution = field(default_factory=SingleComponent)
    order: MergeOrderPolicy = field(default_factory=UniformInterleave)
    traffic_weighting: str = "pairs"
    zipf_exponent: float = 1.1
    node_budgets: Optional[Tuple[int, ...]] = None
    """Optional per-scenario E11 node budgets (see :meth:`Scenario.sweep_node_budgets`)."""

    def __post_init__(self) -> None:
        if not 0.0 <= self.clique_fraction <= 1.0:
            raise ReproError("clique_fraction must lie in [0, 1]")
        if self.node_budgets is not None and not isinstance(self.node_budgets, tuple):
            raise ReproError(
                f"node_budgets must be a tuple of integers, got "
                f"{type(self.node_budgets).__name__}"
            )

    @property
    def kind_label(self) -> str:  # type: ignore[override]
        if self.clique_fraction == 1.0:
            return "cliques"
        if self.clique_fraction == 0.0:
            return "lines"
        return "mixed"

    def fleet(self, num_nodes: int, seed: object) -> List[Tuple[GraphKind, int]]:
        """The hidden component fleet: ``(kind, size)`` per component.

        Derived from its own salted stream, so the reveal view and the
        traffic view of one ``(num_nodes, seed)`` pair share the same fleet.
        """
        rng = random.Random(f"{seed}|{self.name}|fleet")
        component_sizes = self.sizes.sample(num_nodes, rng)
        fleet: List[Tuple[GraphKind, int]] = []
        for size in component_sizes:
            if self.clique_fraction >= 1.0:
                kind = GraphKind.CLIQUES
            elif self.clique_fraction <= 0.0:
                kind = GraphKind.LINES
            else:
                kind = (
                    GraphKind.CLIQUES
                    if rng.random() < self.clique_fraction
                    else GraphKind.LINES
                )
            fleet.append((kind, size))
        return fleet

    def reveal_sequences(self, num_nodes: int, seed: object) -> List[RevealSequence]:
        fleet = self.fleet(num_nodes, seed)
        rng = random.Random(f"{seed}|{self.name}|reveal")
        return composed_sequences(fleet, self.order, rng)

    def request_stream(
        self, num_nodes: int, num_requests: int, seed: object
    ) -> RequestStream:
        fleet = self.fleet(num_nodes, seed)
        # Traffic components need at least two nodes; singletons are silent
        # (they never communicate), so fold each into the previous component.
        clique_sizes = [size for kind, size in fleet if kind is GraphKind.CLIQUES]
        line_sizes = [size for kind, size in fleet if kind is GraphKind.LINES]
        clique_sizes = _fold_singletons(clique_sizes)
        line_sizes = _fold_singletons(line_sizes)
        salt = f"{seed}|{self.name}"
        if clique_sizes and not line_sizes:
            return tenant_request_stream(
                clique_sizes,
                num_requests,
                salt,
                weighting=self.traffic_weighting,
                zipf_exponent=self.zipf_exponent,
            )
        if line_sizes and not clique_sizes:
            return pipeline_request_stream(
                line_sizes,
                num_requests,
                salt,
                weighting=self.traffic_weighting,
                zipf_exponent=self.zipf_exponent,
            )
        return mixed_request_stream(
            clique_sizes,
            line_sizes,
            num_requests,
            salt,
            weighting=self.traffic_weighting,
            zipf_exponent=self.zipf_exponent,
        )


def _fold_singletons(sizes: List[int]) -> List[int]:
    """Merge size-1 components into a neighbour (traffic needs pairs)."""
    folded: List[int] = []
    carry = 0
    for size in sizes:
        if size < 2:
            carry += size
            continue
        folded.append(size + carry)
        carry = 0
    if carry:
        if folded:
            folded[-1] += carry
        elif carry >= 2:
            folded.append(carry)
    return folded


# ----------------------------------------------------------------------
# Special (non-composed) scenarios
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class GrowingHotspotScenario(Scenario):
    """One clique absorbs every other node — the Lemma 5 tight workload."""

    name: str = "growing-hotspot"
    description: str = (
        "a single hotspot clique absorbs all nodes one by one (harmonic "
        "budget is tight); traffic is uniform pairs inside the hotspot"
    )
    kind_label: str = "cliques"

    def reveal_sequences(self, num_nodes: int, seed: object) -> List[RevealSequence]:
        return [growing_clique_sequence(num_nodes)]

    def request_stream(
        self, num_nodes: int, num_requests: int, seed: object
    ) -> RequestStream:
        return tenant_request_stream([num_nodes], num_requests, f"{seed}|{self.name}")


@dataclass(frozen=True)
class TournamentScenario(Scenario):
    """Balanced tournament merges (pairs, pairs of pairs, …)."""

    name: str = "tournament-merge"
    description: str = (
        "tournament-style clique merges with shuffled per-round pairing "
        "(the most balanced merge tree)"
    )
    kind_label: str = "cliques"

    def reveal_sequences(self, num_nodes: int, seed: object) -> List[RevealSequence]:
        rng = random.Random(f"{seed}|{self.name}|reveal")
        return [balanced_clique_merge_sequence(num_nodes, rng)]

    def request_stream(
        self, num_nodes: int, num_requests: int, seed: object
    ) -> RequestStream:
        return tenant_request_stream([num_nodes], num_requests, f"{seed}|{self.name}")


@dataclass(frozen=True)
class AdversaryTreeScenario(Scenario):
    """Replay of the Theorem 15 binary-tree adversary via ``repro.adversary``."""

    name: str = "adversary-tree"
    description: str = (
        "the Theorem 15 randomized lower-bound distribution replayed through "
        "repro.adversary (line edges in binary-tournament order)"
    )
    kind_label: str = "lines"

    @staticmethod
    def _fleet_size(num_nodes: int) -> int:
        """Theorem 15's construction is defined on powers of two; both views
        round the budget down to the largest one that fits, so they always
        describe the same hidden fleet."""
        if num_nodes < 2:
            raise ReproError("the tree adversary needs at least two nodes")
        return 1 << (num_nodes.bit_length() - 1)

    def reveal_sequences(self, num_nodes: int, seed: object) -> List[RevealSequence]:
        # Imported lazily: repro.adversary pulls in the core simulator, which
        # would otherwise form an import cycle with the generator adapters.
        from repro.adversary.tree_adversary import tree_adversary_sequence

        rng = random.Random(f"{seed}|{self.name}|reveal")
        sequence, _ = tree_adversary_sequence(self._fleet_size(num_nodes), rng)
        return [sequence]

    def request_stream(
        self, num_nodes: int, num_requests: int, seed: object
    ) -> RequestStream:
        return pipeline_request_stream(
            [self._fleet_size(num_nodes)], num_requests, f"{seed}|{self.name}"
        )


@dataclass(frozen=True)
class AdversaryLineScenario(Scenario):
    """Worst-case line growth: a single path revealed in random order."""

    name: str = "adversary-line"
    description: str = (
        "a single hidden path revealed in adversarially shuffled edge order "
        "(the workload family of the Theorem 16 adversary)"
    )
    kind_label: str = "lines"

    def reveal_sequences(self, num_nodes: int, seed: object) -> List[RevealSequence]:
        from repro.workloads.generation import random_line_sequence

        rng = random.Random(f"{seed}|{self.name}|reveal")
        return [random_line_sequence(num_nodes, rng)]

    def request_stream(
        self, num_nodes: int, num_requests: int, seed: object
    ) -> RequestStream:
        return pipeline_request_stream(
            [num_nodes], num_requests, f"{seed}|{self.name}"
        )


# ----------------------------------------------------------------------
# Built-in catalog
# ----------------------------------------------------------------------
_DATACENTER_SCALE = {
    "smoke": ScenarioParams(num_nodes=120, num_requests=1_200),
    "bench": ScenarioParams(num_nodes=1_000, num_requests=10_000),
    "full": ScenarioParams(num_nodes=5_000, num_requests=60_000),
}


@dataclass(frozen=True)
class DatacenterScenario(ComposedScenario):
    """A composed scenario sized for datacenter-scale streaming (E12)."""

    scale_params = _DATACENTER_SCALE

    def tenant_stream(
        self, num_tenants: int, num_requests: int, seed: object
    ) -> RequestStream:
        """A stream over exactly ``num_tenants`` components (E12's knob)."""
        rng = random.Random(f"{seed}|{self.name}|tenants")
        component_sizes = self.sizes.sample_count(num_tenants, rng)
        salt = f"{seed}|{self.name}"
        if self.clique_fraction >= 1.0:
            return tenant_request_stream(
                component_sizes,
                num_requests,
                salt,
                weighting=self.traffic_weighting,
                zipf_exponent=self.zipf_exponent,
            )
        if self.clique_fraction <= 0.0:
            return pipeline_request_stream(
                component_sizes,
                num_requests,
                salt,
                weighting=self.traffic_weighting,
                zipf_exponent=self.zipf_exponent,
            )
        half = len(component_sizes) // 2
        return mixed_request_stream(
            component_sizes[:half],
            component_sizes[half:],
            num_requests,
            salt,
            weighting=self.traffic_weighting,
            zipf_exponent=self.zipf_exponent,
        )


register(
    ComposedScenario(
        name="uniform-cliques",
        description="one clique grown by uniform random merges (the E2 workload)",
        clique_fraction=1.0,
        sizes=SingleComponent(),
        order=UniformInterleave(),
    )
)
register(
    ComposedScenario(
        name="uniform-lines",
        description="one hidden path, edges revealed in uniform random order "
        "(the E3 workload)",
        clique_fraction=0.0,
        sizes=SingleComponent(),
        order=UniformInterleave(),
    )
)
register(
    ComposedScenario(
        name="zipf-tenants",
        description="heavy-tailed tenant cliques with Zipf-skewed popularity "
        "(a few hot tenants dominate reveals and traffic)",
        clique_fraction=1.0,
        sizes=HeavyTailedSizes(alpha=1.4, min_size=2, max_size=16),
        order=ZipfInterleave(exponent=1.2),
        traffic_weighting="zipf",
        zipf_exponent=1.2,
    )
)
register(
    ComposedScenario(
        name="bursty-pipelines",
        description="heavy-tailed pipelines deployed in temporal bursts "
        "(stage-by-stage rollouts)",
        clique_fraction=0.0,
        sizes=HeavyTailedSizes(alpha=1.6, min_size=2, max_size=12),
        order=BurstyInterleave(burst_length=6),
    )
)
register(
    ComposedScenario(
        name="mixed-fleet",
        description="a fleet mixing tenant cliques and pipelines "
        "(per-kind reveal sequences, one shared traffic stream)",
        clique_fraction=0.5,
        sizes=HeavyTailedSizes(alpha=1.6, min_size=2, max_size=12),
        order=UniformInterleave(),
    )
)
register(GrowingHotspotScenario())
register(TournamentScenario())
register(AdversaryTreeScenario())
register(AdversaryLineScenario())
register(
    DatacenterScenario(
        name="datacenter-tenants",
        description="datacenter-scale tenant cliques: thousands of "
        "heavy-tailed tenants, Zipf-skewed traffic, streamed generation "
        "(the E12 workload)",
        clique_fraction=1.0,
        sizes=HeavyTailedSizes(alpha=1.5, min_size=2, max_size=8),
        order=ZipfInterleave(exponent=1.1),
        traffic_weighting="zipf",
        zipf_exponent=1.1,
    )
)
register(
    DatacenterScenario(
        name="datacenter-pipelines",
        description="datacenter-scale pipelines: thousands of heavy-tailed "
        "pipelines, Zipf-skewed traffic, streamed generation (E12's line row)",
        clique_fraction=0.0,
        sizes=HeavyTailedSizes(alpha=1.5, min_size=2, max_size=8),
        order=BurstyInterleave(burst_length=6),
        traffic_weighting="zipf",
        zipf_exponent=1.1,
    )
)
