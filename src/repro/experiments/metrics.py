"""Statistics helpers for the experiment harness.

Competitive-ratio experiments aggregate randomized trials, so every reported
number should come with a dispersion estimate.  The helpers here are small,
dependency-free (mean / standard deviation / normal-approximation confidence
intervals) and are shared by the experiment suite, the benchmarks and the
tests.

The trace helpers at the bottom read streamed
:class:`~repro.telemetry.trace.CostTrace` records (cumulative cost series,
phase shares), so the charts module can plot cost trajectories without any
run ever materializing trajectory snapshots.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.errors import ExperimentError
from repro.telemetry.trace import CostTrace


@dataclass(frozen=True)
class SampleSummary:
    """Summary statistics of a sample of real values."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float
    ci_half_width: float
    """Half width of the ~95% normal-approximation confidence interval."""

    @property
    def ci_low(self) -> float:
        """Lower end of the ~95% confidence interval of the mean."""
        return self.mean - self.ci_half_width

    @property
    def ci_high(self) -> float:
        """Upper end of the ~95% confidence interval of the mean."""
        return self.mean + self.ci_half_width


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (raises on empty input)."""
    if not values:
        raise ExperimentError("mean() of an empty sample is undefined")
    return sum(values) / len(values)


def sample_std(values: Sequence[float]) -> float:
    """Sample standard deviation (``n-1`` denominator; 0 for singleton samples)."""
    if not values:
        raise ExperimentError("sample_std() of an empty sample is undefined")
    if len(values) == 1:
        return 0.0
    centre = mean(values)
    return math.sqrt(sum((value - centre) ** 2 for value in values) / (len(values) - 1))


def summarize(values: Sequence[float]) -> SampleSummary:
    """Full :class:`SampleSummary` of a sample (95% normal-approximation CI)."""
    if not values:
        raise ExperimentError("summarize() of an empty sample is undefined")
    centre = mean(values)
    deviation = sample_std(values)
    half_width = 1.96 * deviation / math.sqrt(len(values)) if len(values) > 1 else 0.0
    return SampleSummary(
        count=len(values),
        mean=centre,
        std=deviation,
        minimum=min(values),
        maximum=max(values),
        ci_half_width=half_width,
    )


def ratios(costs: Sequence[float], denominator: float) -> Sequence[float]:
    """Element-wise ``cost / denominator`` with a guard against zero denominators."""
    if denominator <= 0:
        raise ExperimentError("competitive ratios need a positive optimum estimate")
    return [cost / denominator for cost in costs]


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean of positive values (used for cross-size ratio aggregation)."""
    if not values:
        raise ExperimentError("geometric_mean() of an empty sample is undefined")
    if any(value <= 0 for value in values):
        raise ExperimentError("geometric_mean() needs strictly positive values")
    return math.exp(sum(math.log(value) for value in values) / len(values))


# ----------------------------------------------------------------------
# Streamed-trace consumers
# ----------------------------------------------------------------------
def trace_cumulative_costs(trace: CostTrace) -> List[int]:
    """The running total cost at each recorded trace event, in step order."""
    if not trace.events:
        raise ExperimentError("the trace recorded no events")
    return trace.cumulative_costs()


def trace_phase_shares(trace: CostTrace) -> Dict[str, float]:
    """Fraction of the run's total cost spent in each phase.

    A zero-cost run attributes everything to the moving phase by convention
    (shares always sum to 1).
    """
    total = trace.total_cost
    if total == 0:
        return {"moving": 1.0, "rearranging": 0.0}
    return {
        "moving": trace.total_moving_cost / total,
        "rearranging": trace.total_rearranging_cost / total,
    }
