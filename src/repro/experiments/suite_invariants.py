"""Experiments E6–E8: the probabilistic invariants behind the analysis.

The competitive analysis of ``Rand`` rests on two exact distributional
invariants (Lemma 3 for the relative order of components, Lemma 10 for the
orientation of components) and on the action probabilities prescribed by
Figures 1 and 2.  These experiments verify all three by Monte-Carlo
simulation of the actual implementation:

* **E6** — for every step of a clique workload and every pair of alive
  components, the empirical frequency of "X lies left of Y" is compared with
  Lemma 3's formula ``|X×Y ∩ L_{π0}| / (|X||Y|)``.
* **E7** — for every step of a line workload and every alive component of
  size ≥ 2, the empirical frequency of the component's stored orientation is
  compared with Lemma 10's formula ``|L_{→X} ∩ L_{π0}| / C(|X|,2)``.
* **E8** — a single, hand-built merge is repeated many times and the
  frequency of each of the algorithm's possible actions is compared with the
  probabilities printed in Figures 1 and 2.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.core.bounds import lemma3_left_probability, lemma10_orientation_probability
from repro.core.instance import OnlineMinLAInstance
from repro.core.permutation import Arrangement, random_arrangement
from repro.core.rand_cliques import RandomizedCliqueLearner
from repro.core.rand_lines import RandomizedLineLearner
from repro.core.simulator import run_online
from repro.experiments.metrics import mean
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentScale,
    scale_pick,
    seeded_rng,
)
from repro.experiments.tables import ResultTable
from repro.graphs.generators import random_clique_merge_sequence, random_line_sequence
from repro.graphs.reveal import (
    CliqueRevealSequence,
    LineRevealSequence,
    RevealStep,
)


# ----------------------------------------------------------------------
# E6 — Lemma 3: relative order of components
# ----------------------------------------------------------------------
def run_e6_lemma3_probability(
    scale: ExperimentScale = ExperimentScale.BENCH, seed: int = 0
) -> ExperimentResult:
    """Monte-Carlo check of Lemma 3 on a random clique workload."""
    num_nodes: int = scale_pick(scale, 6, 8, 10)
    trials: int = scale_pick(scale, 300, 1500, 6000)

    rng = seeded_rng(seed, "e6", "instance")
    sequence = random_clique_merge_sequence(num_nodes, rng)
    pi0 = random_arrangement(range(num_nodes), rng)
    instance = OnlineMinLAInstance(sequence, pi0)

    # Pre-compute the component structure after every step.
    components_per_step: List[List[frozenset]] = [
        instance.sequence.components_after(step_count)
        for step_count in range(1, instance.num_steps + 1)
    ]

    # Counters keyed by (step, component X, component Y) for ordered pairs.
    left_counts: Dict[Tuple[int, frozenset, frozenset], int] = {}
    for trial in range(trials):
        trial_rng = seeded_rng(seed, "e6", "trial", trial)
        result = run_online(
            RandomizedCliqueLearner(),
            instance,
            rng=trial_rng,
            verify=False,
            record_trajectory=True,
        )
        assert result.arrangements is not None
        for step_count, components in enumerate(components_per_step, start=1):
            arrangement = result.arrangements[step_count]
            spans = {component: arrangement.span(component) for component in components}
            for x in components:
                for y in components:
                    if x is y:
                        continue
                    key = (step_count, x, y)
                    if spans[x][1] < spans[y][0]:
                        left_counts[key] = left_counts.get(key, 0) + 1
                    else:
                        left_counts.setdefault(key, 0)

    deviations: List[float] = []
    worst_key = None
    worst_dev = 0.0
    for (step_count, x, y), count in left_counts.items():
        empirical = count / trials
        theoretical = lemma3_left_probability(x, y, pi0)
        deviation = abs(empirical - theoretical)
        deviations.append(deviation)
        if deviation > worst_dev:
            worst_dev = deviation
            worst_key = (step_count, tuple(sorted(x)), tuple(sorted(y)))

    table = ResultTable(
        title="E6 — Lemma 3: P[X left of Y] vs |X×Y ∩ L_pi0| / (|X||Y|)",
        columns=["n", "trials", "component pairs checked", "mean |deviation|", "max |deviation|"],
    )
    table.add_row(num_nodes, trials, len(left_counts), mean(deviations), worst_dev)
    return ExperimentResult(
        experiment_id="E6",
        title="Relative-order invariant (Lemma 3)",
        paper_claim="At any point of Rand's execution the probability that "
        "component X lies left of component Y equals |X×Y ∩ L_pi0| / (|X||Y|), "
        "independently of the reveal order.",
        tables=[table],
        findings={"max deviation": worst_dev, "mean deviation": mean(deviations)},
        notes=[f"worst deviating triple (step, X, Y): {worst_key}"],
    )


# ----------------------------------------------------------------------
# E7 — Lemma 10: orientation of components
# ----------------------------------------------------------------------
def run_e7_lemma10_probability(
    scale: ExperimentScale = ExperimentScale.BENCH, seed: int = 0
) -> ExperimentResult:
    """Monte-Carlo check of Lemma 10 on a random line workload."""
    num_nodes: int = scale_pick(scale, 6, 8, 10)
    trials: int = scale_pick(scale, 300, 1500, 6000)

    rng = seeded_rng(seed, "e7", "instance")
    sequence = random_line_sequence(num_nodes, rng)
    pi0 = random_arrangement(range(num_nodes), rng)
    instance = OnlineMinLAInstance(sequence, pi0)

    paths_per_step: List[List[Tuple]] = [
        instance.sequence.forest_after(step_count).paths()
        for step_count in range(1, instance.num_steps + 1)
    ]

    forward_counts: Dict[Tuple[int, Tuple], int] = {}
    for trial in range(trials):
        trial_rng = seeded_rng(seed, "e7", "trial", trial)
        result = run_online(
            RandomizedLineLearner(),
            instance,
            rng=trial_rng,
            verify=False,
            record_trajectory=True,
        )
        assert result.arrangements is not None
        for step_count, paths in enumerate(paths_per_step, start=1):
            arrangement = result.arrangements[step_count]
            for path in paths:
                if len(path) < 2:
                    continue
                key = (step_count, tuple(path))
                lo, _ = arrangement.span(path)
                laid_out = tuple(arrangement[lo + offset] for offset in range(len(path)))
                if laid_out == tuple(path):
                    forward_counts[key] = forward_counts.get(key, 0) + 1
                else:
                    forward_counts.setdefault(key, 0)

    deviations: List[float] = []
    worst_dev = 0.0
    worst_key = None
    for (step_count, path), count in forward_counts.items():
        empirical = count / trials
        theoretical = lemma10_orientation_probability(path, pi0)
        deviation = abs(empirical - theoretical)
        deviations.append(deviation)
        if deviation > worst_dev:
            worst_dev = deviation
            worst_key = (step_count, path)

    table = ResultTable(
        title="E7 — Lemma 10: P[→X] vs |L_→X ∩ L_pi0| / C(|X|,2)",
        columns=["n", "trials", "component states checked", "mean |deviation|", "max |deviation|"],
    )
    table.add_row(num_nodes, trials, len(forward_counts), mean(deviations), worst_dev)
    return ExperimentResult(
        experiment_id="E7",
        title="Orientation invariant (Lemma 10)",
        paper_claim="At any point of Rand's execution (line case) the probability "
        "that component X has a given orientation equals "
        "|L_→X ∩ L_pi0| / C(|X|,2).",
        tables=[table],
        findings={"max deviation": worst_dev, "mean deviation": mean(deviations)},
        notes=[f"worst deviating state (step, path): {worst_key}"],
    )


# ----------------------------------------------------------------------
# E8 — Figures 1 & 2: action probabilities of a single update
# ----------------------------------------------------------------------
def _clique_action_sequence(size_x: int, gap: int, size_z: int):
    """Nodes, reveal steps and π0 for the Figure 1 scenario.

    ``π_0`` lays out the ``X`` nodes, then ``gap`` filler singletons, then the
    ``Z`` nodes; the intra-``X`` and intra-``Z`` merges touch adjacent blocks
    only (zero cost, no randomness), so the final merge of ``X`` with ``Z`` is
    the only random action.
    """
    x_nodes = [f"x{i}" for i in range(size_x)]
    fillers = [f"f{i}" for i in range(gap)]
    z_nodes = [f"z{i}" for i in range(size_z)]
    nodes = x_nodes + fillers + z_nodes
    steps: List[RevealStep] = []
    for i in range(1, size_x):
        steps.append(RevealStep(x_nodes[0], x_nodes[i]))
    for i in range(1, size_z):
        steps.append(RevealStep(z_nodes[0], z_nodes[i]))
    steps.append(RevealStep(x_nodes[0], z_nodes[0]))
    return nodes, steps, x_nodes, fillers, z_nodes


def _line_action_sequence(size_x: int, size_z: int):
    """Nodes, reveal steps and π0 for the Figure 2 scenario.

    ``X`` and ``Z`` are built as paths laid out in ``π_0`` order (deterministic,
    zero-cost reveals); the final edge joins ``x_0`` (left end of ``X``) with
    ``z_0`` (left end of ``Z``), producing exactly the two rearranging options
    of Figure 2: reverse ``X`` in place, or swap the blocks and reverse ``Z``.
    """
    x_nodes = [f"x{i}" for i in range(size_x)]
    z_nodes = [f"z{i}" for i in range(size_z)]
    nodes = x_nodes + z_nodes
    steps: List[RevealStep] = []
    for i in range(size_x - 1):
        steps.append(RevealStep(x_nodes[i], x_nodes[i + 1]))
    for i in range(size_z - 1):
        steps.append(RevealStep(z_nodes[i], z_nodes[i + 1]))
    steps.append(RevealStep(x_nodes[0], z_nodes[0]))
    return nodes, steps, x_nodes, z_nodes


def run_e8_action_probabilities(
    scale: ExperimentScale = ExperimentScale.BENCH, seed: int = 0
) -> ExperimentResult:
    """Check the implementation's action probabilities against Figures 1 and 2."""
    trials: int = scale_pick(scale, 400, 2000, 10000)
    size_x, gap, size_z = 3, 4, 2

    # --- Figure 1: which clique moves -------------------------------------
    nodes, steps, x_nodes, _, _ = _clique_action_sequence(size_x, gap, size_z)
    sequence = CliqueRevealSequence(nodes, steps)
    instance = OnlineMinLAInstance.with_identity_start(sequence)
    moved_x = 0
    for trial in range(trials):
        rng = seeded_rng(seed, "e8-cliques", trial)
        result = run_online(RandomizedCliqueLearner(), instance, rng=rng, verify=False)
        # If X moved, its nodes end up to the right of the filler nodes.
        if result.final_arrangement.position(x_nodes[0]) > gap - 1:
            moved_x += 1
    empirical_move_x = moved_x / trials
    theoretical_move_x = size_z / (size_x + size_z)

    # --- Figure 2: which orientation the merged path takes ----------------
    nodes, steps, x_nodes, z_nodes = _line_action_sequence(size_x, size_z)
    line_sequence = LineRevealSequence(nodes, steps)
    line_instance = OnlineMinLAInstance.with_identity_start(line_sequence)
    reversed_x = 0
    for trial in range(trials):
        rng = seeded_rng(seed, "e8-lines", trial)
        result = run_online(RandomizedLineLearner(), line_instance, rng=rng, verify=False)
        # Option "reverse X in place": X stays left of Z.
        if result.final_arrangement.position(x_nodes[0]) < result.final_arrangement.position(
            z_nodes[0]
        ):
            reversed_x += 1
    empirical_reverse_x = reversed_x / trials
    pairs_x = size_x * (size_x - 1) // 2
    pairs_z = size_z * (size_z - 1) // 2
    pairs_total = (size_x + size_z) * (size_x + size_z - 1) // 2
    theoretical_reverse_x = (size_x * size_z + pairs_z) / pairs_total

    table = ResultTable(
        title="E8 — single-update action probabilities (Figures 1 and 2)",
        columns=["figure", "action", "empirical", "theoretical", "|deviation|"],
    )
    table.add_row(
        "Figure 1",
        f"move X (|X|={size_x}, |Z|={size_z})",
        empirical_move_x,
        theoretical_move_x,
        abs(empirical_move_x - theoretical_move_x),
    )
    table.add_row(
        "Figure 2",
        f"reverse X in place (|X|={size_x}, |Z|={size_z})",
        empirical_reverse_x,
        theoretical_reverse_x,
        abs(empirical_reverse_x - theoretical_reverse_x),
    )
    max_dev = max(
        abs(empirical_move_x - theoretical_move_x),
        abs(empirical_reverse_x - theoretical_reverse_x),
    )
    return ExperimentResult(
        experiment_id="E8",
        title="Action probabilities (Figures 1 and 2)",
        paper_claim="Figure 1: X moves with probability |Z|/(|X|+|Z|).  "
        "Figure 2: each rearranging option is chosen with probability equal to "
        "the other option's cost divided by C(|X|+|Z|, 2).",
        tables=[table],
        findings={"max deviation": max_dev},
        notes=[
            f"Clique scenario uses |X|={size_x}, gap={gap}, |Z|={size_z}; the "
            f"line scenario joins the two left path endpoints so the options are "
            f"'reverse X' (cost C({size_x},2)={pairs_x}) and 'swap and reverse Z' "
            f"(cost |X||Z|+C({size_z},2)={size_x * size_z + pairs_z})."
        ],
    )
