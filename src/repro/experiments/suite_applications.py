"""Experiments E9–E10: baselines from related work and the motivating case study.

* **E9** compares the paper's learning algorithms, deployed in the dynamic
  MinLA cost model of Olver et al. (serve cost = current distance, optional
  rearrangement), against the classic baselines discussed in Section 1.3:
  never-move, a list-update-style pair collocation rule, and the
  "move the smaller component towards the larger" rule.
* **E10** is the virtual-network-embedding case study of Section 1.2: tenant
  (clique) and pipeline (line) traffic is replayed on a linear datacenter and
  the migration/communication trade-off of demand-aware re-embedding with the
  paper's algorithms is measured against a static embedding and an offline
  oracle.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence

from repro.core.det import DeterministicClosestLearner
from repro.core.rand_cliques import RandomizedCliqueLearner
from repro.core.rand_lines import RandomizedLineLearner
from repro.dynamic_minla.algorithms import (
    CollocateLearnerAdapter,
    MoveSmallerComponentAlgorithm,
    MoveToFrontPairAlgorithm,
    NeverMoveAlgorithm,
    requests_from_clique_pattern,
    requests_from_line_pattern,
)
from repro.dynamic_minla.model import DynamicMinLAAlgorithm, run_dynamic
from repro.core.permutation import random_arrangement
from repro.experiments.metrics import mean
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentScale,
    scale_pick,
    seeded_rng,
)
from repro.experiments.tables import ResultTable
from repro.graphs.reveal import GraphKind
from repro.vnet.controller import (
    DemandAwareController,
    OracleController,
    StaticController,
)
from repro.vnet.embedding import Embedding
from repro.vnet.topology import LinearDatacenter
from repro.vnet.traffic import pipeline_traffic, tenant_traffic


# ----------------------------------------------------------------------
# E9 — dynamic MinLA baselines (related work, Section 1.3)
# ----------------------------------------------------------------------
def _dynamic_contestants(kind: GraphKind) -> Dict[str, Callable[[], DynamicMinLAAlgorithm]]:
    """The algorithms compared in the dynamic cost model for one pattern kind."""
    if kind is GraphKind.CLIQUES:
        learner_factory: Callable[[], DynamicMinLAAlgorithm] = lambda: CollocateLearnerAdapter(
            RandomizedCliqueLearner, GraphKind.CLIQUES, name="learning rand (cliques)"
        )
    else:
        learner_factory = lambda: CollocateLearnerAdapter(
            RandomizedLineLearner, GraphKind.LINES, name="learning rand (lines)"
        )
    return {
        "never move": NeverMoveAlgorithm,
        "move-to-front pair": MoveToFrontPairAlgorithm,
        "move smaller component": MoveSmallerComponentAlgorithm,
        "learning rand (paper)": learner_factory,
    }


def run_e9_dynamic_baselines(
    scale: ExperimentScale = ExperimentScale.BENCH, seed: int = 0
) -> ExperimentResult:
    """Total serve+move cost of learning algorithms vs dynamic MinLA baselines."""
    num_groups: int = scale_pick(scale, 3, 4, 6)
    group_size: int = scale_pick(scale, 4, 8, 12)
    num_requests: int = scale_pick(scale, 200, 1000, 4000)
    repetitions: int = scale_pick(scale, 1, 2, 3)

    table = ResultTable(
        title="E9 — dynamic MinLA cost model: learning algorithms vs baselines",
        columns=[
            "pattern",
            "n",
            "requests",
            "algorithm",
            "serve cost",
            "move cost",
            "move (moving)",
            "move (rearranging)",
            "total cost",
            "total / never-move",
        ],
    )
    advantage: Dict[str, float] = {}
    for pattern_name, kind in (("tenant cliques", GraphKind.CLIQUES), ("pipelines", GraphKind.LINES)):
        sizes = [group_size] * num_groups
        totals: Dict[str, List[float]] = {}
        serves: Dict[str, List[float]] = {}
        moves: Dict[str, List[float]] = {}
        moving_phase: Dict[str, List[float]] = {}
        rearranging_phase: Dict[str, List[float]] = {}
        for repetition in range(repetitions):
            rng = seeded_rng(seed, "e9", pattern_name, repetition)
            if kind is GraphKind.CLIQUES:
                nodes, requests = requests_from_clique_pattern(sizes, num_requests, rng)
            else:
                nodes, requests = requests_from_line_pattern(sizes, num_requests, rng)
            initial = random_arrangement(nodes, rng)
            for label, factory in _dynamic_contestants(kind).items():
                run_rng = seeded_rng(seed, "e9-run", pattern_name, repetition, label)
                result = run_dynamic(factory(), nodes, requests, initial, rng=run_rng)
                totals.setdefault(label, []).append(result.total_cost)
                serves.setdefault(label, []).append(result.total_serve_cost)
                moves.setdefault(label, []).append(result.total_move_cost)
                moving_phase.setdefault(label, []).append(result.total_moving_cost)
                rearranging_phase.setdefault(label, []).append(
                    result.total_rearranging_cost
                )
        never_move_total = mean(totals["never move"])
        for label in _dynamic_contestants(kind):
            total = mean(totals[label])
            table.add_row(
                pattern_name,
                sum(sizes),
                num_requests,
                label,
                mean(serves[label]),
                mean(moves[label]),
                mean(moving_phase[label]),
                mean(rearranging_phase[label]),
                total,
                total / never_move_total if never_move_total > 0 else float("inf"),
            )
            if label == "learning rand (paper)":
                advantage[pattern_name] = (
                    total / never_move_total if never_move_total > 0 else float("inf")
                )
    return ExperimentResult(
        experiment_id="E9",
        title="Dynamic MinLA baselines (Section 1.3 related work)",
        paper_claim="The learning model is stricter than dynamic MinLA, but on "
        "traffic whose hidden pattern is a collection of cliques or lines, "
        "collocating components as the paper's algorithms do pays off against "
        "the never-move and heuristic baselines once requests repeat.",
        tables=[table],
        findings={
            f"learning total / never-move ({name})": value
            for name, value in advantage.items()
        },
        notes=[
            "Serve cost is the distance between the endpoints when a request "
            "arrives; move cost counts adjacent swaps.  'learning rand (paper)' "
            "reveals the pattern the first time two components communicate and "
            "serves all later requests in place.",
            "The moving/rearranging columns split the move cost through the "
            "shared CostLedger API: the learner's phase attribution is passed "
            "through verbatim, the plain heuristics charge single-block slides "
            "entirely to the moving phase.",
        ],
    )


# ----------------------------------------------------------------------
# E10 — virtual network embedding case study (Section 1.2)
# ----------------------------------------------------------------------
def run_e10_vnet_case_study(
    scale: ExperimentScale = ExperimentScale.BENCH, seed: int = 0
) -> ExperimentResult:
    """Migration/communication trade-off of demand-aware re-embedding."""
    num_groups: int = scale_pick(scale, 3, 4, 6)
    group_size: int = scale_pick(scale, 4, 8, 12)
    num_requests: int = scale_pick(scale, 300, 1500, 6000)
    repetitions: int = scale_pick(scale, 1, 2, 3)

    table = ResultTable(
        title="E10 — linear datacenter embedding: static vs oracle vs demand-aware",
        columns=[
            "traffic",
            "slots",
            "requests",
            "controller",
            "migration cost",
            "migration (moving)",
            "migration (rearranging)",
            "communication cost",
            "total cost",
            "total / static",
        ],
    )
    findings: Dict[str, float] = {}
    for traffic_name in ("tenant cliques", "pipelines"):
        sizes = [group_size] * num_groups
        num_slots = sum(sizes)
        datacenter = LinearDatacenter(num_slots)
        controllers = {
            "static": StaticController(datacenter),
            "oracle (offline)": OracleController(datacenter),
            "demand-aware rand (paper)": DemandAwareController(
                datacenter,
                RandomizedCliqueLearner
                if traffic_name == "tenant cliques"
                else RandomizedLineLearner,
                name="demand-aware-rand",
            ),
            "demand-aware det": DemandAwareController(
                datacenter, DeterministicClosestLearner, name="demand-aware-det"
            ),
        }
        sums: Dict[str, Dict[str, List[float]]] = {
            label: {
                "migration": [],
                "moving": [],
                "rearranging": [],
                "communication": [],
                "total": [],
            }
            for label in controllers
        }
        for repetition in range(repetitions):
            rng = seeded_rng(seed, "e10", traffic_name, repetition)
            if traffic_name == "tenant cliques":
                trace = tenant_traffic(sizes, num_requests, rng)
            else:
                trace = pipeline_traffic(sizes, num_requests, rng)
            # Use a shared random starting placement for every controller.
            initial_arrangement = random_arrangement(trace.virtual_nodes, rng)
            initial_embedding = Embedding(datacenter, initial_arrangement)
            for label, controller in controllers.items():
                run_rng = seeded_rng(seed, "e10-run", traffic_name, repetition, label)
                report = controller.run(trace, initial_embedding=initial_embedding, rng=run_rng)
                sums[label]["migration"].append(report.migration_cost)
                sums[label]["moving"].append(report.moving_migration_cost)
                sums[label]["rearranging"].append(report.rearranging_migration_cost)
                sums[label]["communication"].append(report.communication_cost)
                sums[label]["total"].append(report.total_cost)
        static_total = mean(sums["static"]["total"])
        for label in controllers:
            total = mean(sums[label]["total"])
            table.add_row(
                traffic_name,
                num_slots,
                num_requests,
                label,
                mean(sums[label]["migration"]),
                mean(sums[label]["moving"]),
                mean(sums[label]["rearranging"]),
                mean(sums[label]["communication"]),
                total,
                total / static_total if static_total > 0 else float("inf"),
            )
            if label == "demand-aware rand (paper)":
                findings[f"demand-aware total / static ({traffic_name})"] = (
                    total / static_total if static_total > 0 else float("inf")
                )
    return ExperimentResult(
        experiment_id="E10",
        title="Virtual network embedding case study (Section 1.2)",
        paper_claim="Demand-aware re-embedding trades a bounded migration cost "
        "for a large reduction in communication cost when the traffic pattern is "
        "a collection of cliques (tenants) or lines (pipelines).",
        tables=[table],
        findings=findings,
        notes=[
            "The oracle controller knows the final pattern and performs a single "
            "up-front migration; it lower-bounds what any online controller can "
            "hope for on communication cost.",
            "The migration moving/rearranging columns come from the shared "
            "CostLedger API: the demand-aware controllers record every learner "
            "update with its phase attribution; the oracle's single offline jump "
            "is charged entirely to the moving phase by convention.",
        ],
    )
