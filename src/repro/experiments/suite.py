"""The complete experiment suite and the ``EXPERIMENTS.md`` report generator.

``ALL_EXPERIMENTS`` maps experiment ids (E1–E15, as indexed in ``DESIGN.md``)
to the functions implementing them; :func:`run_all` executes any subset at a
given scale, and :func:`write_experiments_markdown` regenerates the
paper-versus-measured record in ``EXPERIMENTS.md`` together with per-table
CSV files under ``results/``.

Run from the command line with::

    python -m repro.experiments.suite --scale bench --output EXPERIMENTS.md

Pass ``--jobs N`` to fan independent experiments out across ``N`` worker
processes (see :mod:`repro.experiments.parallel`); results are bit-identical
to a sequential run.

Every invocation is archived in the persistent run store
(:mod:`repro.runstore`, default ``.repro-runs``, ``REPRO_RUNSTORE`` /
``--store`` override, ``--no-store`` to opt out) together with each
experiment's wall-clock time, so ``python -m repro runs report`` can draw
cross-run variance bands and ``runs compare`` can gate on regressions.
"""

from __future__ import annotations

import argparse
import math
import time
from pathlib import Path
from typing import Callable, Dict, Iterable, List, Optional

from repro.errors import ExperimentError
from repro.experiments.parallel import resolve_jobs, run_experiments_timed
from repro.experiments.runner import ExperimentResult, ExperimentScale
from repro.runstore.store import RunStore, run_record_from_result
from repro.experiments.suite_applications import (
    run_e9_dynamic_baselines,
    run_e10_vnet_case_study,
)
from repro.experiments.suite_core import (
    run_e1_det_upper_bound,
    run_e2_rand_cliques,
    run_e3_rand_lines,
    run_e4_tree_lower_bound,
    run_e5_det_lower_bound,
)
from repro.experiments.suite_invariants import (
    run_e6_lemma3_probability,
    run_e7_lemma10_probability,
    run_e8_action_probabilities,
)
from repro.experiments.suite_obs import run_e15_soak_observability
from repro.experiments.suite_service import (
    run_e13_service_latency,
    run_e14_serving_equivalence,
)
from repro.experiments.suite_workloads import (
    run_e11_scenario_sweep,
    run_e12_datacenter_vnet,
)

ExperimentFunction = Callable[[ExperimentScale, int], ExperimentResult]

#: Registry of every experiment, keyed by its DESIGN.md identifier.
ALL_EXPERIMENTS: Dict[str, ExperimentFunction] = {
    "E1": run_e1_det_upper_bound,
    "E2": run_e2_rand_cliques,
    "E3": run_e3_rand_lines,
    "E4": run_e4_tree_lower_bound,
    "E5": run_e5_det_lower_bound,
    "E6": run_e6_lemma3_probability,
    "E7": run_e7_lemma10_probability,
    "E8": run_e8_action_probabilities,
    "E9": run_e9_dynamic_baselines,
    "E10": run_e10_vnet_case_study,
    "E11": run_e11_scenario_sweep,
    "E12": run_e12_datacenter_vnet,
    "E13": run_e13_service_latency,
    "E14": run_e14_serving_equivalence,
    "E15": run_e15_soak_observability,
}


def run_all(
    scale: ExperimentScale = ExperimentScale.BENCH,
    seed: int = 0,
    only: Optional[Iterable[str]] = None,
    jobs: Optional[int] = None,
    store: Optional[RunStore] = None,
) -> List[ExperimentResult]:
    """Run the selected experiments (all of them by default) and return the results.

    ``jobs`` fans independent experiments out across worker processes
    (``None`` reads the ``REPRO_JOBS`` environment variable, default 1);
    every experiment is a pure function of ``(scale, seed)``, so the results
    are identical for every worker count.

    ``store`` (a :class:`~repro.runstore.store.RunStore`) archives every
    result — tables, streamed trace samples, per-experiment wall time — so
    cross-run variance bands and regression reports can be computed later
    (``python -m repro runs report``).  Archiving never changes a result:
    the store receives exactly what the caller receives.
    """
    selected = list(only) if only is not None else list(ALL_EXPERIMENTS)
    unknown = [name for name in selected if name not in ALL_EXPERIMENTS]
    if unknown:
        raise ExperimentError(f"unknown experiment ids: {unknown}")
    resolved_jobs = resolve_jobs(jobs)
    timed = run_experiments_timed(selected, scale, seed=seed, jobs=resolved_jobs)
    if store is not None:
        for run in timed:
            store.append(
                run_record_from_result(
                    run.result,
                    scale=scale.value,
                    seed=seed,
                    jobs=resolved_jobs,
                    wall_time_seconds=run.seconds,
                    work=run.work,
                    profile=run.profile,
                )
            )
    return [run.result for run in timed]


def _verdict(result: ExperimentResult) -> "tuple[bool, str]":
    """Per-experiment pass/fail verdict plus a one-line justification.

    The criteria mirror the assertions of the benchmark harness: upper bounds
    must hold (with Monte-Carlo slack), lower-bound constructions must show
    the predicted growth, probability invariants must match to sampling
    accuracy, and the application experiments must show the predicted winner.
    """
    table = result.tables[0] if result.tables else None
    try:
        if result.experiment_id == "E1":
            ok = all(
                row[table.columns.index("max ratio (vs OPT lb)")]
                <= row[table.columns.index("bound 2n-2")] + 1e-9
                for row in table.rows
            )
            return ok, "every observed ratio stays below 2n-2"
        if result.experiment_id == "E2":
            ok = all(
                row[table.columns.index("ratio vs OPT ub")]
                <= row[table.columns.index("bound 4·H_n")] * 1.05
                for row in table.rows
                if row[table.columns.index("algorithm")] == "rand (paper)"
            )
            return ok, "mean ratio of the paper's algorithm stays below 4·H_n"
        if result.experiment_id == "E3":
            ok = all(
                row[table.columns.index("ratio vs OPT")]
                <= row[table.columns.index("bound 8·H_n")] * 1.05
                for row in table.rows
                if row[table.columns.index("algorithm")] == "rand (paper)"
            )
            return ok, "mean ratio of the paper's algorithm stays below 8·H_n"
        if result.experiment_id == "E4":
            ratios = table.column("mean ratio")
            sizes = table.column("n")
            floor_ok = all(
                ratio >= math.log2(size) / 16 for ratio, size in zip(ratios, sizes)
            )
            growth_ok = ratios[-1] > ratios[0]
            return floor_ok and growth_ok, (
                "ratio grows with n and respects the (log2 n)/16 floor"
            )
        if result.experiment_id == "E5":
            det_ratios = table.column("Det ratio")
            rand_ratios = table.column("Rand mean ratio")
            sizes = table.column("n")
            growth_ok = det_ratios[-1] >= det_ratios[0] * (sizes[-1] / sizes[0]) * 0.4
            separation_ok = det_ratios[-1] > rand_ratios[-1]
            return growth_ok and separation_ok, (
                "Det's ratio grows linearly and exceeds Rand's on the same adversary"
            )
        if result.experiment_id in ("E6", "E7"):
            ok = result.findings["max deviation"] < 0.05
            return ok, "Monte-Carlo estimate matches the closed form within 0.05"
        if result.experiment_id == "E8":
            ok = result.findings["max deviation"] < 0.03
            return ok, "action frequencies match Figures 1 and 2 within 0.03"
        if result.experiment_id in ("E9", "E10"):
            ok = all(value < 1.0 for value in result.findings.values())
            baseline = "never-move" if result.experiment_id == "E9" else "static embedding"
            return ok, f"the learning approach beats the {baseline} on total cost"
        if result.experiment_id == "E11":
            ok = all(value <= 1.05 for value in result.findings.values())
            return ok, (
                "det and rand stay below their paper bounds on every "
                "registry scenario (5% Monte-Carlo slack)"
            )
        if result.experiment_id == "E12":
            ok = all(value < 1.0 for value in result.findings.values())
            return ok, (
                "streamed demand-aware embedding beats the static embedding "
                "at datacenter scale"
            )
        if result.experiment_id == "E13":
            throughputs = table.column("throughput req/s")
            p50 = table.column("p50 ms")
            p99 = table.column("p99 ms")
            ok = (
                all(value > 0 for value in throughputs)
                and all(high >= low for high, low in zip(p99, p50))
                and result.findings["max cross-backend cost deviation"] == 0.0
            )
            return ok, (
                "thread and process backends served every configuration with "
                "well-ordered latency percentiles and identical cost totals "
                "(timings are machine-dependent; correctness is gated by E14)"
            )
        if result.experiment_id == "E14":
            ok = result.findings["max |served - offline| cost deviation"] == 0.0
            return ok, (
                "served cost totals are bit-identical to the offline batch "
                "harness on both backends for every scenario, view and "
                "batch size"
            )
        if result.experiment_id == "E15":
            ok = (
                result.findings["histogram bound violations"] == 0.0
                and result.findings["max cross-backend count deviation"] == 0.0
                and all(
                    result.findings[f"rss growth {backend} (x)"] <= 1.10
                    for backend in ("thread", "process")
                )
            )
            return ok, (
                "RSS stays within 10% of warm-up while served requests grow "
                "100×, histogram percentiles bound the exact ones within "
                "one bucket, and cost-count aggregation is bit-identical "
                "across backends"
            )
    except Exception:  # pragma: no cover - defensive: a malformed table is a failure
        return False, "verdict could not be computed"
    return True, "no automated criterion defined"


def write_experiments_markdown(
    results: List[ExperimentResult],
    output_path: Path,
    csv_directory: Optional[Path] = None,
    scale: ExperimentScale = ExperimentScale.BENCH,
    elapsed_seconds: Optional[float] = None,
) -> Path:
    """Write the paper-versus-measured report and the per-table CSV files."""
    lines: List[str] = [
        "# EXPERIMENTS — paper claims vs measured results",
        "",
        "This file is generated by `python -m repro.experiments.suite`.",
        "",
        f"- scale: `{scale.value}`",
        f"- experiments: {', '.join(result.experiment_id for result in results)}",
    ]
    if elapsed_seconds is not None:
        lines.append(f"- wall-clock time: {elapsed_seconds:.1f} s")
    lines.append("")
    lines.append(
        "The paper (Dallot et al., *Learning Minimum Linear Arrangement of "
        "Cliques and Lines*, ICDCS 2024) contains no empirical tables; every "
        "experiment below reproduces one of its theorems, lemmas or figures, as "
        "indexed in `DESIGN.md`.  'Measured' numbers come from this repository's "
        "implementation; the expectation is that measured ratios stay below the "
        "paper's upper bounds, grow at the rates its lower bounds dictate, and "
        "that the probability invariants match to Monte-Carlo accuracy."
    )
    lines.append("")
    lines.append("## Summary: paper claim vs measured outcome")
    lines.append("")
    lines.append("| experiment | paper artefact | verdict | criterion |")
    lines.append("|---|---|---|---|")
    for result in results:
        reproduced, criterion = _verdict(result)
        verdict_text = "reproduced" if reproduced else "**not reproduced**"
        lines.append(
            f"| {result.experiment_id} | {result.title} | {verdict_text} | {criterion} |"
        )
    lines.append("")
    for result in results:
        lines.append(result.to_markdown())
        lines.append("")
        if csv_directory is not None:
            for index, table in enumerate(result.tables):
                csv_path = csv_directory / f"{result.experiment_id.lower()}_{index}.csv"
                table.to_csv(csv_path)
                lines.append(f"*(raw data: `{csv_path.as_posix()}`)*")
                lines.append("")
    output_path.write_text("\n".join(lines))
    return output_path


def main(argv: Optional[List[str]] = None) -> int:
    """Command-line entry point regenerating ``EXPERIMENTS.md``."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--scale",
        choices=[scale.value for scale in ExperimentScale],
        default=ExperimentScale.BENCH.value,
        help="how much work each experiment does (smoke / bench / full)",
    )
    parser.add_argument("--seed", type=int, default=0, help="master random seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for independent experiments "
        "(default: the REPRO_JOBS environment variable, else 1)",
    )
    parser.add_argument(
        "--only",
        nargs="*",
        default=None,
        help="subset of experiment ids to run (default: all)",
    )
    parser.add_argument(
        "--output",
        type=Path,
        default=Path("EXPERIMENTS.md"),
        help="path of the generated Markdown report",
    )
    parser.add_argument(
        "--csv-dir",
        type=Path,
        default=Path("results"),
        help="directory for the per-table CSV files",
    )
    parser.add_argument(
        "--store",
        type=Path,
        default=None,
        help="run-archive directory (default: REPRO_RUNSTORE, else .repro-runs)",
    )
    parser.add_argument(
        "--no-store",
        action="store_true",
        help="do not archive this invocation's runs",
    )
    arguments = parser.parse_args(argv)
    scale = ExperimentScale(arguments.scale)
    store = None if arguments.no_store else RunStore(arguments.store)
    start = time.time()
    results = run_all(
        scale=scale,
        seed=arguments.seed,
        only=arguments.only,
        jobs=arguments.jobs,
        store=store,
    )
    elapsed = time.time() - start
    write_experiments_markdown(
        results,
        output_path=arguments.output,
        csv_directory=arguments.csv_dir,
        scale=scale,
        elapsed_seconds=elapsed,
    )
    for result in results:
        print(result.to_ascii())
        print()
    print(f"wrote {arguments.output} in {elapsed:.1f} s")
    if store is not None:
        print(
            f"archived {len(results)} run(s) in {store.root} "
            "(inspect with python -m repro runs list)"
        )
    return 0


if __name__ == "__main__":  # pragma: no cover - CLI entry point
    raise SystemExit(main())
