"""Experiments E13–E14: serving latency/throughput and serving correctness.

* **E13** boots the arrangement-serving subsystem (:mod:`repro.service`)
  in-process and replays four registered scenarios against it across a grid
  of shard counts and micro-batch sizes, measuring throughput and
  p50/p95/p99 latency.  Latency and throughput are *measurements* — they
  vary run to run with the machine — while every served cost total in the
  table is a pure function of ``(scenario, seed, shards, batch)``.
* **E14** is the correctness anchor behind those numbers: on identical
  workloads the served cost totals are compared against the offline batch
  harness — :func:`repro.core.simulator.run_online` for reveal serving and
  :meth:`repro.vnet.controller.DemandAwareController.run_stream` for
  traffic serving — and must be **bit-identical** at batch size 1 (and at
  any batch size for reveal serving, whose costs are batch-invariant).

E14 is deterministic like E1–E12.  E13's timing columns are the one
deliberate exception in the suite: archiving it in the run store therefore
accumulates one content-addressed entry per invocation instead of deduping,
which is exactly what a latency log should do.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.instance import OnlineMinLAInstance
from repro.core.simulator import run_online
from repro.experiments.charts import horizontal_bar_chart
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentScale,
    scale_pick,
    seeded_rng,
)
from repro.experiments.tables import ResultTable
from repro.service.broker import ArrangementService
from repro.service.loadgen import (
    build_reveal_service,
    learner_factory,
    run_scenario_loadgen,
    shard_rng,
)
from repro.vnet.controller import DemandAwareController
from repro.vnet.topology import LinearDatacenter
from repro.workloads.registry import get_scenario

#: The (kind-pure) scenarios both serving experiments exercise.
SERVICE_SCENARIOS = (
    "uniform-cliques",
    "zipf-tenants",
    "bursty-pipelines",
    "growing-hotspot",
)


# ----------------------------------------------------------------------
# E13 — serving throughput and latency vs shards and batch size
# ----------------------------------------------------------------------
def run_e13_service_latency(
    scale: ExperimentScale = ExperimentScale.BENCH, seed: int = 0
) -> ExperimentResult:
    """Throughput and latency percentiles of the sharded serving subsystem."""
    num_nodes: int = scale_pick(scale, 24, 48, 96)
    num_requests: int = scale_pick(scale, 300, 1_500, 6_000)
    shard_counts: Tuple[int, ...] = scale_pick(scale, (1, 2), (1, 2, 4), (1, 4))
    batch_sizes: Tuple[int, ...] = scale_pick(scale, (1, 4), (1, 16), (1, 16))

    table = ResultTable(
        title="E13 — serving: throughput and latency vs shards and batch size",
        columns=[
            "scenario",
            "nodes",
            "requests",
            "shards",
            "batch",
            "throughput req/s",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "mean batch",
            "served cost",
        ],
    )
    findings: Dict[str, float] = {}
    worst_p99 = 0.0
    best_throughput = 0.0
    chart_labels: List[str] = []
    chart_values: List[float] = []
    for scenario_name in SERVICE_SCENARIOS:
        scenario = get_scenario(scenario_name)
        for num_shards in shard_counts:
            for batch_size in batch_sizes:
                report = run_scenario_loadgen(
                    scenario,
                    num_nodes=num_nodes,
                    num_requests=num_requests,
                    seed=seed,
                    num_shards=num_shards,
                    batch_size=batch_size,
                    queue_capacity=max(num_requests, 1),
                )
                summary = report.summary
                table.add_row(
                    scenario_name,
                    num_nodes,
                    summary.num_requests,
                    num_shards,
                    batch_size,
                    summary.throughput,
                    summary.latency_ms["p50"],
                    summary.latency_ms["p95"],
                    summary.latency_ms["p99"],
                    summary.mean_batch,
                    summary.total_cost,
                )
                worst_p99 = max(worst_p99, summary.latency_ms["p99"])
                best_throughput = max(best_throughput, summary.throughput)
                if scenario_name == SERVICE_SCENARIOS[1]:
                    chart_labels.append(
                        f"shards={num_shards} batch={batch_size}"
                    )
                    chart_values.append(summary.throughput)
    findings["best throughput (req/s)"] = best_throughput
    findings["worst p99 latency (ms)"] = worst_p99
    chart = horizontal_bar_chart(chart_labels, chart_values)
    return ExperimentResult(
        experiment_id="E13",
        title="Serving throughput and latency vs shards and micro-batch size",
        paper_claim="The paper's algorithms are online: served request by "
        "request, they sustain datacenter-style traffic under concurrency.  "
        "Component-aligned sharding shrinks each worker's arrangement (an "
        "O(n/shards) refresh) and micro-batching amortizes re-embedding "
        "passes, so both knobs buy throughput at a measurable tail-latency "
        "trade-off.",
        tables=[table],
        findings=findings,
        notes=[
            "Throughput and latency are wall-clock measurements (they vary "
            "with the machine and run); every 'served cost' value is "
            "deterministic for its (scenario, seed, shards, batch) cell — "
            "E14 pins those totals to the offline harness.",
            "Workers are thread-backed: shards serialize pure-Python compute "
            "under the GIL, so shard scaling shows mainly through smaller "
            "per-shard arrangements and queue isolation, while batch size "
            "amortizes the O(n) slot-map refresh per rearrangement pass.",
            "The shards column is the configured count; the component-"
            "aligned partition drops empty shards, so a single-component "
            "scenario (growing-hotspot) serves every configuration through "
            "one engine however many shards were requested.",
            f"throughput on {SERVICE_SCENARIOS[1]} by configuration:\n"
            + chart,
        ],
    )


# ----------------------------------------------------------------------
# E14 — served totals vs the offline batch harness
# ----------------------------------------------------------------------
def _serve_reveals(
    instance: OnlineMinLAInstance,
    learner: str,
    seed: int,
    batch_size: int,
) -> float:
    """Serve an instance's reveal steps through a 1-shard deployment."""
    service: ArrangementService = build_reveal_service(
        instance,
        num_shards=1,
        learner=learner,
        seed=seed,
        batch_size=batch_size,
        queue_capacity=max(instance.num_steps, 1),
    )
    service.start()
    for step in instance.steps:
        service.submit((step.u, step.v))
    results = service.drain()
    return float(sum(result.migration_swaps for result in results))


def run_e14_serving_equivalence(
    scale: ExperimentScale = ExperimentScale.BENCH, seed: int = 0
) -> ExperimentResult:
    """Bit-identity of served cost totals against the offline harness."""
    num_nodes: int = scale_pick(scale, 16, 32, 64)
    num_requests: int = scale_pick(scale, 300, 1_200, 5_000)
    batch_sizes: Tuple[int, ...] = scale_pick(scale, (1, 4), (1, 8), (1, 32))
    learner = "rand"

    table = ResultTable(
        title="E14 — serving correctness: served totals vs the offline harness",
        columns=[
            "scenario",
            "view",
            "n",
            "work items",
            "batch",
            "offline cost",
            "served cost",
            "identical",
        ],
    )
    max_deviation = 0.0
    for scenario_name in SERVICE_SCENARIOS[:3]:
        scenario = get_scenario(scenario_name)

        # Reveal serving vs run_online: batch-invariant, so every batch size
        # must reproduce the offline ledger exactly.
        sequence = scenario.reveal_sequences(num_nodes, seed)[0]
        instance = OnlineMinLAInstance.with_random_start(
            sequence, seeded_rng(seed, "e14-start", scenario_name)
        )
        factory = learner_factory(sequence.kind, learner)
        offline = run_online(factory(), instance, rng=shard_rng(seed, 0))
        for batch_size in batch_sizes:
            served = _serve_reveals(instance, learner, seed, batch_size)
            deviation = abs(served - offline.total_cost)
            max_deviation = max(max_deviation, deviation)
            table.add_row(
                scenario_name,
                "reveals",
                instance.num_nodes,
                instance.num_steps,
                batch_size,
                float(offline.total_cost),
                served,
                deviation == 0.0,
            )

        # Traffic serving vs the streamed demand-aware controller: the
        # controller fed the same batch boundaries is the offline yardstick
        # (batch size 1 = a slot-map refresh after every revealing request).
        stream = scenario.request_stream(num_nodes, num_requests, seed)
        datacenter = LinearDatacenter(stream.num_nodes)
        controller_factory = learner_factory(stream.kind, learner)
        for batch_size in batch_sizes:
            controller = DemandAwareController(datacenter, controller_factory)
            offline_report = controller.run_stream(
                stream, rng=shard_rng(seed, 0), batch_size=batch_size
            )
            report = run_scenario_loadgen(
                scenario,
                num_nodes=num_nodes,
                num_requests=num_requests,
                seed=seed,
                num_shards=1,
                batch_size=batch_size,
                queue_capacity=max(num_requests, 1),
            )
            deviation = abs(
                report.summary.total_cost - offline_report.total_cost
            )
            max_deviation = max(max_deviation, deviation)
            table.add_row(
                scenario_name,
                "traffic",
                stream.num_nodes,
                stream.num_requests,
                batch_size,
                offline_report.total_cost,
                report.summary.total_cost,
                deviation == 0.0,
            )
    return ExperimentResult(
        experiment_id="E14",
        title="Serving correctness: served totals equal the offline harness",
        paper_claim="Serving is an execution strategy, not a different "
        "algorithm: dispatching the same reveal sequence (or request "
        "stream) through the sharded service must charge exactly the swaps "
        "and slot distances the batch harness charges — bit-identical "
        "totals, not approximately equal ones.",
        tables=[table],
        findings={"max |served - offline| cost deviation": max_deviation},
        notes=[
            "Reveal serving wraps the learner with the same node universe, "
            "initial arrangement and random stream as run_online, so totals "
            "match for every micro-batch size (costs are batch-invariant).  "
            "Traffic serving reproduces run_stream's batched re-embedding: "
            "identical batch boundaries give identical totals, with batch "
            "size 1 refreshing the slot maps after every revealing request.",
            "All rows use one shard: with several shards each engine serves "
            "a restriction of the workload, which is the deployment mode "
            "E13 measures but not a configuration the offline harness can "
            "replay directly.",
        ],
    )
