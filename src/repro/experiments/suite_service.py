"""Experiments E13–E14: serving latency/throughput and serving correctness.

* **E13** boots the arrangement-serving subsystem (:mod:`repro.service`)
  in-process and replays four registered scenarios against it across a grid
  of worker backends (thread vs process), shard counts and micro-batch
  sizes, measuring throughput and p50/p95/p99 latency.  Latency and
  throughput are *measurements* — they vary run to run with the machine —
  while every served cost total in the table is a pure function of
  ``(scenario, seed, shards, batch)`` and must agree across backends.
* **E14** is the correctness anchor behind those numbers: on identical
  workloads the served cost totals of *both* backends are compared against
  the offline batch harness — :func:`repro.core.simulator.run_online` for
  reveal serving and
  :meth:`repro.vnet.controller.DemandAwareController.run_stream` for
  traffic serving — and must be **bit-identical** at batch size 1 (and at
  any batch size for reveal serving, whose costs are batch-invariant).

E14 is deterministic like E1–E12.  E13's timing columns are the one
deliberate exception in the suite: archiving it in the run store therefore
accumulates one content-addressed entry per invocation instead of deduping,
which is exactly what a latency log should do.
"""

from __future__ import annotations

import os
from typing import Dict, List, Tuple

from repro.core.instance import OnlineMinLAInstance
from repro.core.simulator import run_online
from repro.experiments.charts import horizontal_bar_chart
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentScale,
    scale_pick,
    seeded_rng,
)
from repro.experiments.tables import ResultTable
from repro.service.broker import BACKENDS, ArrangementService
from repro.service.loadgen import (
    build_reveal_service,
    learner_factory,
    run_scenario_loadgen,
    shard_rng,
)
from repro.vnet.controller import DemandAwareController
from repro.vnet.topology import LinearDatacenter
from repro.workloads.registry import get_scenario

#: The (kind-pure) scenarios both serving experiments exercise.
SERVICE_SCENARIOS = (
    "uniform-cliques",
    "zipf-tenants",
    "bursty-pipelines",
    "growing-hotspot",
)


def _available_cores() -> int:
    """CPU cores this process may schedule on (what backend scaling can use)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux platforms
        return os.cpu_count() or 1


# ----------------------------------------------------------------------
# E13 — serving throughput and latency vs backend, shards and batch size
# ----------------------------------------------------------------------
def run_e13_service_latency(
    scale: ExperimentScale = ExperimentScale.BENCH, seed: int = 0
) -> ExperimentResult:
    """Throughput and latency percentiles of the sharded serving subsystem."""
    num_nodes: int = scale_pick(scale, 24, 48, 96)
    num_requests: int = scale_pick(scale, 300, 1_500, 6_000)
    shard_counts: Tuple[int, ...] = scale_pick(scale, (1, 2), (1, 2, 4), (1, 2, 4))
    batch_sizes: Tuple[int, ...] = scale_pick(scale, (1, 4), (1, 16), (1, 16))

    table = ResultTable(
        title="E13 — serving: throughput and latency vs backend, shards, batch",
        columns=[
            "scenario",
            "backend",
            "nodes",
            "requests",
            "shards",
            "batch",
            "throughput req/s",
            "p50 ms",
            "p95 ms",
            "p99 ms",
            "mean batch",
            "busy %",
            "served cost",
        ],
    )
    findings: Dict[str, float] = {}
    worst_p99 = 0.0
    best_throughput: Dict[str, float] = {backend: 0.0 for backend in BACKENDS}
    max_shards = max(shard_counts)
    best_at_max_shards: Dict[str, float] = {backend: 0.0 for backend in BACKENDS}
    served_costs: Dict[Tuple[str, int, int], Dict[str, float]] = {}
    chart_labels: List[str] = []
    chart_values: List[float] = []
    chart_batch = max(batch_sizes)
    for scenario_name in SERVICE_SCENARIOS:
        scenario = get_scenario(scenario_name)
        for backend in BACKENDS:
            for num_shards in shard_counts:
                for batch_size in batch_sizes:
                    report = run_scenario_loadgen(
                        scenario,
                        num_nodes=num_nodes,
                        num_requests=num_requests,
                        seed=seed,
                        num_shards=num_shards,
                        batch_size=batch_size,
                        queue_capacity=max(num_requests, 1),
                        backend=backend,
                    )
                    summary = report.summary
                    table.add_row(
                        scenario_name,
                        backend,
                        num_nodes,
                        summary.num_requests,
                        num_shards,
                        batch_size,
                        summary.throughput,
                        summary.latency_ms["p50"],
                        summary.latency_ms["p95"],
                        summary.latency_ms["p99"],
                        summary.mean_batch,
                        summary.mean_busy_fraction * 100.0,
                        summary.total_cost,
                    )
                    worst_p99 = max(worst_p99, summary.latency_ms["p99"])
                    best_throughput[backend] = max(
                        best_throughput[backend], summary.throughput
                    )
                    if num_shards == max_shards:
                        best_at_max_shards[backend] = max(
                            best_at_max_shards[backend], summary.throughput
                        )
                    served_costs.setdefault(
                        (scenario_name, num_shards, batch_size), {}
                    )[backend] = summary.total_cost
                    if (
                        scenario_name == SERVICE_SCENARIOS[1]
                        and batch_size == chart_batch
                    ):
                        chart_labels.append(
                            f"{backend} shards={num_shards}"
                        )
                        chart_values.append(summary.throughput)
    for backend in BACKENDS:
        findings[f"best throughput {backend} (req/s)"] = best_throughput[backend]
    if best_at_max_shards["thread"] > 0.0:
        findings[f"process/thread speedup at shards={max_shards}"] = (
            best_at_max_shards["process"] / best_at_max_shards["thread"]
        )
    findings["max cross-backend cost deviation"] = max(
        (
            max(per_backend.values()) - min(per_backend.values())
            for per_backend in served_costs.values()
        ),
        default=0.0,
    )
    findings["worst p99 latency (ms)"] = worst_p99
    chart = horizontal_bar_chart(chart_labels, chart_values)
    return ExperimentResult(
        experiment_id="E13",
        title="Serving throughput and latency vs backend, shards and batch size",
        paper_claim="The paper's algorithms are online: served request by "
        "request, they sustain datacenter-style traffic under concurrency.  "
        "Component-aligned sharding shrinks each worker's arrangement (an "
        "O(n/shards) refresh) and micro-batching amortizes re-embedding "
        "passes; because shards never share state, process-backed workers "
        "can in principle scale past the GIL to one core per shard.",
        tables=[table],
        findings=findings,
        notes=[
            "Throughput and latency are wall-clock measurements (they vary "
            "with the machine and run); every 'served cost' value is "
            "deterministic for its (scenario, seed, shards, batch) cell and "
            "identical across backends ('max cross-backend cost deviation' "
            "must be 0) — E14 pins those totals to the offline harness.",
            "backend=thread serializes pure-Python compute under the GIL, "
            "so shard scaling shows mainly through smaller per-shard "
            "arrangements; backend=process forks one interpreter per shard "
            "(requests over bounded multiprocessing queues, arrangements "
            "published via shared memory), removing the GIL ceiling at the "
            "price of per-request IPC.  Near-linear process scaling needs "
            f"one core per shard; this run saw {_available_cores()} "
            "schedulable core(s), so single-core hosts measure only the "
            "IPC overhead, not the parallel speedup.",
            "The shards column is the configured count; the component-"
            "aligned partition drops empty shards, so a single-component "
            "scenario (growing-hotspot) serves every configuration through "
            "one engine however many shards were requested.",
            f"throughput on {SERVICE_SCENARIOS[1]} by backend and shard "
            f"count (batch={chart_batch}):\n" + chart,
        ],
    )


# ----------------------------------------------------------------------
# E14 — served totals vs the offline batch harness
# ----------------------------------------------------------------------
def _serve_reveals(
    instance: OnlineMinLAInstance,
    learner: str,
    seed: int,
    batch_size: int,
    backend: str,
) -> float:
    """Serve an instance's reveal steps through a 1-shard deployment."""
    service: ArrangementService = build_reveal_service(
        instance,
        num_shards=1,
        learner=learner,
        seed=seed,
        batch_size=batch_size,
        queue_capacity=max(instance.num_steps, 1),
        backend=backend,
    )
    try:
        service.start()
        for step in instance.steps:
            service.submit((step.u, step.v))
        results = service.drain()
    finally:
        service.close()
    return float(sum(result.migration_swaps for result in results))


def run_e14_serving_equivalence(
    scale: ExperimentScale = ExperimentScale.BENCH, seed: int = 0
) -> ExperimentResult:
    """Bit-identity of served cost totals against the offline harness."""
    num_nodes: int = scale_pick(scale, 16, 32, 64)
    num_requests: int = scale_pick(scale, 300, 1_200, 5_000)
    batch_sizes: Tuple[int, ...] = scale_pick(scale, (1, 4), (1, 8), (1, 32))
    learner = "rand"

    table = ResultTable(
        title="E14 — serving correctness: served totals vs the offline harness",
        columns=[
            "scenario",
            "view",
            "n",
            "work items",
            "batch",
            "offline cost",
            "thread cost",
            "process cost",
            "identical",
        ],
    )
    max_deviation = 0.0
    for scenario_name in SERVICE_SCENARIOS[:3]:
        scenario = get_scenario(scenario_name)

        # Reveal serving vs run_online: batch-invariant, so every batch size
        # on every backend must reproduce the offline ledger exactly.
        sequence = scenario.reveal_sequences(num_nodes, seed)[0]
        instance = OnlineMinLAInstance.with_random_start(
            sequence, seeded_rng(seed, "e14-start", scenario_name)
        )
        factory = learner_factory(sequence.kind, learner)
        offline = run_online(factory(), instance, rng=shard_rng(seed, 0))
        for batch_size in batch_sizes:
            served = {
                backend: _serve_reveals(
                    instance, learner, seed, batch_size, backend
                )
                for backend in BACKENDS
            }
            deviation = max(
                abs(cost - offline.total_cost) for cost in served.values()
            )
            max_deviation = max(max_deviation, deviation)
            table.add_row(
                scenario_name,
                "reveals",
                instance.num_nodes,
                instance.num_steps,
                batch_size,
                float(offline.total_cost),
                served["thread"],
                served["process"],
                deviation == 0.0,
            )

        # Traffic serving vs the streamed demand-aware controller: the
        # controller fed the same batch boundaries is the offline yardstick
        # (batch size 1 = a slot-map refresh after every revealing request).
        stream = scenario.request_stream(num_nodes, num_requests, seed)
        datacenter = LinearDatacenter(stream.num_nodes)
        controller_factory = learner_factory(stream.kind, learner)
        for batch_size in batch_sizes:
            controller = DemandAwareController(datacenter, controller_factory)
            offline_report = controller.run_stream(
                stream, rng=shard_rng(seed, 0), batch_size=batch_size
            )
            served = {}
            for backend in BACKENDS:
                report = run_scenario_loadgen(
                    scenario,
                    num_nodes=num_nodes,
                    num_requests=num_requests,
                    seed=seed,
                    num_shards=1,
                    batch_size=batch_size,
                    queue_capacity=max(num_requests, 1),
                    backend=backend,
                )
                served[backend] = report.summary.total_cost
            deviation = max(
                abs(cost - offline_report.total_cost)
                for cost in served.values()
            )
            max_deviation = max(max_deviation, deviation)
            table.add_row(
                scenario_name,
                "traffic",
                stream.num_nodes,
                stream.num_requests,
                batch_size,
                offline_report.total_cost,
                served["thread"],
                served["process"],
                deviation == 0.0,
            )
    return ExperimentResult(
        experiment_id="E14",
        title="Serving correctness: served totals equal the offline harness",
        paper_claim="Serving is an execution strategy, not a different "
        "algorithm: dispatching the same reveal sequence (or request "
        "stream) through the sharded service must charge exactly the swaps "
        "and slot distances the batch harness charges — bit-identical "
        "totals on every worker backend, not approximately equal ones.",
        tables=[table],
        findings={"max |served - offline| cost deviation": max_deviation},
        notes=[
            "Reveal serving wraps the learner with the same node universe, "
            "initial arrangement and random stream as run_online, so totals "
            "match for every micro-batch size (costs are batch-invariant).  "
            "Traffic serving reproduces run_stream's batched re-embedding: "
            "identical batch boundaries give identical totals, with batch "
            "size 1 refreshing the slot maps after every revealing request.",
            "The thread and process columns must both equal the offline "
            "column bit for bit: engines cross the fork unchanged, each "
            "shard's learner draws only from its seed-derived stream, and "
            "batch composition depends only on per-shard request order — "
            "on neither backend do thread or process timings touch costs.",
            "All rows use one shard: with several shards each engine serves "
            "a restriction of the workload, which is the deployment mode "
            "E13 measures but not a configuration the offline harness can "
            "replay directly.",
        ],
    )
