"""Experiment plumbing: results, scaling knobs and reproducible randomness.

Every experiment of the suite (:mod:`repro.experiments.suite`) is a function
``run_eN(scale, seed) -> ExperimentResult``.  The :class:`ExperimentScale`
knob exists so the same experiment code serves three audiences:

* the integration tests run experiments at ``SMOKE`` scale (seconds),
* the pytest-benchmark harness runs them at ``BENCH`` scale (tens of
  seconds in total),
* ``EXPERIMENTS.md`` is regenerated at ``FULL`` scale.

Randomness is always derived from ``seeded_rng(seed, *salt)``, which hashes
the salt into the seed, so two experiments never share random streams even
when they share a seed.
"""

from __future__ import annotations

import enum
import random
from dataclasses import dataclass, field
from typing import Dict, List, Sequence, TypeVar

from repro.experiments.tables import ResultTable
from repro.telemetry.trace import TraceSample


class ExperimentScale(str, enum.Enum):
    """How much work an experiment should do."""

    SMOKE = "smoke"
    """Minimal sizes/trials for fast integration tests."""

    BENCH = "bench"
    """Moderate sizes/trials for the pytest-benchmark harness."""

    FULL = "full"
    """The sizes/trials used to produce ``EXPERIMENTS.md``."""


@dataclass(frozen=True)
class ExperimentResult:
    """Outcome of one experiment: tables plus pass/fail style findings."""

    experiment_id: str
    title: str
    paper_claim: str
    """The statement of the paper this experiment reproduces."""
    tables: Sequence[ResultTable]
    findings: Dict[str, float] = field(default_factory=dict)
    """Headline scalar findings (max ratio, deviation, slope, …)."""
    notes: Sequence[str] = field(default_factory=tuple)
    traces: Sequence[TraceSample] = field(default_factory=tuple)
    """Seeded streamed cost traces recorded by this run (one per traced
    seed per workload group).  The run store archives them so cross-run
    populations can compute variance bands; rendering (tables, markdown)
    deliberately ignores them — a trace is data, not prose."""

    def to_markdown(self) -> str:
        """Render the whole experiment (claim, tables, findings) as Markdown."""
        lines: List[str] = [f"## {self.experiment_id}: {self.title}", ""]
        lines.append(f"*Paper claim.* {self.paper_claim}")
        lines.append("")
        for table in self.tables:
            lines.append(table.to_markdown())
            lines.append("")
        if self.findings:
            lines.append("*Headline findings:*")
            lines.append("")
            for key, value in self.findings.items():
                lines.append(f"- {key}: {value:.3f}")
            lines.append("")
        for note in self.notes:
            lines.append(f"> {note}")
            lines.append("")
        return "\n".join(lines)

    def to_ascii(self) -> str:
        """Render the experiment for terminal output (benchmarks print this)."""
        parts = [f"{self.experiment_id}: {self.title}"]
        for table in self.tables:
            parts.append(table.to_ascii())
        if self.findings:
            parts.append(
                "findings: "
                + ", ".join(f"{key}={value:.3f}" for key, value in self.findings.items())
            )
        return "\n\n".join(parts)


def seeded_rng(seed: int, *salt: object) -> random.Random:
    """A :class:`random.Random` derived deterministically from ``seed`` and ``salt``."""
    return random.Random("|".join([str(seed)] + [repr(item) for item in salt]))


_ScaleValue = TypeVar("_ScaleValue")


def scale_pick(
    scale: ExperimentScale,
    smoke: _ScaleValue,
    bench: _ScaleValue,
    full: _ScaleValue,
) -> _ScaleValue:
    """Select a per-scale configuration value."""
    if scale is ExperimentScale.SMOKE:
        return smoke
    if scale is ExperimentScale.BENCH:
        return bench
    return full
