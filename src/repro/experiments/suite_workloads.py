"""Experiments E11–E12: the scenario-registry sweep and the datacenter case study.

* **E11** sweeps every scenario of the :mod:`repro.workloads.registry`
  catalog and measures the empirical competitive ratio of ``Det`` and the
  paper's randomized algorithms (plus the move-smaller ablation) against
  the certified offline-optimum brackets.  The paper's guarantees are
  worst-case over *all* reveal orders; the sweep checks that they hold
  across skewed, bursty, mixed and adversarial scenario shapes alike.
* **E12** scales the virtual-network case study of Section 1.2 to a
  datacenter: thousands of heavy-tailed tenants with Zipf-skewed traffic,
  generated as a lazy stream (the request list is never materialized) and
  embedded with **batched** updates (the embedding's ``O(n)`` slot maps are
  refreshed once per batch, not once per reveal).

Both experiments are pure functions of ``(scale, seed)`` like the rest of
the suite, so the parallel experiment runner reproduces them bit-identically
for every worker count.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.core.algorithm import OnlineMinLAAlgorithm
from repro.core.bounds import (
    det_competitive_bound,
    rand_cliques_ratio_bound,
    rand_lines_ratio_bound,
)
from repro.core.det import DeterministicClosestLearner
from repro.core.instance import OnlineMinLAInstance
from repro.core.opt import offline_optimum_bounds
from repro.core.permutation import kendall_tau_batch, random_arrangement
from repro.core.rand_cliques import MoveSmallerCliqueLearner, RandomizedCliqueLearner
from repro.core.rand_lines import MoveSmallerLineLearner, RandomizedLineLearner
from repro.core.simulator import run_trials
from repro.experiments.bands import band_caption, traced_population
from repro.experiments.metrics import mean
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentScale,
    scale_pick,
    seeded_rng,
)
from repro.telemetry.trace import TraceSample
from repro.experiments.tables import ResultTable
from repro.graphs.reveal import GraphKind, RevealSequence
from repro.vnet.controller import DemandAwareController, StaticController
from repro.vnet.embedding import Embedding
from repro.vnet.topology import LinearDatacenter
from repro.workloads.registry import DatacenterScenario, all_scenarios, get_scenario

AlgorithmFactory = Callable[[], OnlineMinLAAlgorithm]


def _sweep_factory(label: str, kind: GraphKind) -> AlgorithmFactory:
    """The per-kind contestant behind one E11 column label."""
    if label == "det":
        return DeterministicClosestLearner
    if label == "rand (paper)":
        return (
            RandomizedCliqueLearner
            if kind is GraphKind.CLIQUES
            else RandomizedLineLearner
        )
    return (
        MoveSmallerCliqueLearner
        if kind is GraphKind.CLIQUES
        else MoveSmallerLineLearner
    )


def _rand_bound(sequences: List[RevealSequence]) -> float:
    """The paper's randomized guarantee applicable to a (possibly mixed) fleet."""
    bounds = []
    for sequence in sequences:
        if sequence.kind is GraphKind.CLIQUES:
            bounds.append(rand_cliques_ratio_bound(sequence.num_nodes))
        else:
            bounds.append(rand_lines_ratio_bound(sequence.num_nodes))
    return max(bounds)


# ----------------------------------------------------------------------
# E11 — scenario sweep over the workload registry
# ----------------------------------------------------------------------
#: Default node budgets the sweep measures every scenario at, per scale.
#: Scenarios carrying their own ``node_budgets`` (built-ins or
#: ``.repro-scenarios.toml`` recipes) override this list, so the sweep emits
#: a growth curve per scenario shape instead of a single budget point.
E11_DEFAULT_BUDGETS = ((12,), (16, 24), (24, 48))

#: Traced rand (paper) runs per scenario at its largest budget — the
#: population behind the per-scenario variance bands.
E11_TRACE_SEEDS = (3, 3, 5)


def run_e11_scenario_sweep(
    scale: ExperimentScale = ExperimentScale.BENCH, seed: int = 0
) -> ExperimentResult:
    """Competitive ratios of det / rand across every registered scenario."""
    default_budgets: Tuple[int, ...] = scale_pick(scale, *E11_DEFAULT_BUDGETS)
    trials: int = scale_pick(scale, 3, 8, 16)
    trace_seeds: int = scale_pick(scale, *E11_TRACE_SEEDS)

    table = ResultTable(
        title="E11 — scenario sweep: empirical ratios across the workload registry",
        columns=[
            "scenario",
            "kind",
            "node budget",
            "n (largest seq)",
            "steps",
            "algorithm",
            "mean cost",
            "ratio vs OPT ub",
            "mean displacement",
            "paper bound",
        ],
    )
    worst_det_margin = 0.0
    worst_rand_margin = 0.0
    trace_samples: List[TraceSample] = []
    band_notes: List[str] = []
    for scenario in all_scenarios():
        budgets = scenario.sweep_node_budgets(default_budgets)
        for num_nodes in budgets:
            sequences = scenario.reveal_sequences(num_nodes, seed)
            instances: List[Tuple[RevealSequence, OnlineMinLAInstance, int]] = []
            for index, sequence in enumerate(sequences):
                rng = seeded_rng(seed, "e11", scenario.name, num_nodes, index)
                instance = OnlineMinLAInstance.with_random_start(sequence, rng)
                instances.append(
                    (sequence, instance, offline_optimum_bounds(instance).upper)
                )
            total_steps = sum(len(sequence) for sequence in sequences)
            largest_n = max(sequence.num_nodes for sequence in sequences)
            for label in ("det", "rand (paper)", "move smaller"):
                num_trials = 1 if label == "det" else trials
                total_cost = 0.0
                total_opt = 0
                displacements: List[int] = []
                for index, (sequence, instance, opt_upper) in enumerate(instances):
                    factory = _sweep_factory(label, sequence.kind)
                    results = run_trials(
                        factory,
                        instance,
                        num_trials=num_trials,
                        seed=seed + index,
                    )
                    total_cost += mean([result.total_cost for result in results])
                    total_opt += opt_upper
                    # One batched inversion pass over all final arrangements of
                    # the trial block (count_inversions_batch under the hood).
                    displacements.extend(
                        kendall_tau_batch(
                            instance.initial_arrangement,
                            [result.final_arrangement for result in results],
                        )
                    )
                ratio = total_cost / max(total_opt, 1)
                if label == "det":
                    bound = det_competitive_bound(largest_n)
                    worst_det_margin = max(worst_det_margin, ratio / bound)
                else:
                    bound = _rand_bound(sequences)
                    if label == "rand (paper)":
                        worst_rand_margin = max(worst_rand_margin, ratio / bound)
                table.add_row(
                    scenario.name,
                    scenario.kind_label,
                    num_nodes,
                    largest_n,
                    total_steps,
                    label,
                    total_cost,
                    ratio,
                    mean(displacements),
                    bound,
                )
            if num_nodes == budgets[-1] and trace_seeds >= 1:
                # Variance-band population: traced rand (paper) runs on the
                # scenario's first sequence at its largest budget.
                sequence, instance, _ = instances[0]
                factory = _sweep_factory("rand (paper)", sequence.kind)
                group = f"{scenario.name}/n={num_nodes}"
                samples = traced_population(
                    factory,
                    instance,
                    group,
                    trace_seeds,
                    seed,
                    "e11-trace",
                    scenario.name,
                    num_nodes,
                )
                trace_samples.extend(samples)
                if len(samples) >= 3:
                    band_notes.append(
                        f"{group}: {band_caption(samples, f'e11-band|{group}')}"
                    )
    return ExperimentResult(
        experiment_id="E11",
        title="Scenario sweep over the workload registry",
        paper_claim="The guarantees of Theorems 1, 2 and 8 are worst-case "
        "over all reveal orders: Det stays below 2n-2 and Rand below its "
        "4/8·H_n bound on every scenario shape — uniform, skewed-popularity, "
        "bursty, mixed fleets and adversarial replays alike.",
        tables=[table],
        findings={
            "worst det ratio / (2n-2) bound": worst_det_margin,
            "worst rand ratio / harmonic bound": worst_rand_margin,
        },
        notes=[
            "Each scenario comes from the repro.workloads registry "
            "(python -m repro scenarios list); mixed fleets contribute one "
            "instance per graph kind and ratios aggregate cost and OPT over "
            "both.  Ratios are measured against the certified OPT upper "
            "bound, so they over-estimate the true competitive ratio.",
            "Scenarios are measured at several node budgets (their growth "
            "curve); a scenario's recipe can pin its own budget list via "
            "node_budgets, e.g. in .repro-scenarios.toml.",
            "The displacement column is the Kendall-tau distance between "
            "each trial's final arrangement and the initial one, counted for "
            "the whole trial block in a single count_inversions_batch pass.",
            *band_notes,
        ],
        traces=tuple(trace_samples),
    )


# ----------------------------------------------------------------------
# E12 — datacenter-scale vnet embedding on streamed traffic
# ----------------------------------------------------------------------
def run_e12_datacenter_vnet(
    scale: ExperimentScale = ExperimentScale.BENCH, seed: int = 0
) -> ExperimentResult:
    """Streamed, batch-updated embedding at thousands of tenants."""
    num_tenants: int = scale_pick(scale, 60, 400, 2400)
    num_requests: int = scale_pick(scale, 1_500, 12_000, 60_000)
    batch_size: int = scale_pick(scale, 256, 1_024, 4_096)

    table = ResultTable(
        title="E12 — datacenter embedding: streamed traffic, batched updates",
        columns=[
            "traffic",
            "tenants",
            "nodes",
            "requests",
            "batch",
            "controller",
            "reveals",
            "migration cost",
            "communication cost",
            "total cost",
            "total / static",
        ],
    )
    findings: Dict[str, float] = {}
    trace_samples: List[TraceSample] = []
    rows: List[Tuple[str, str, int]] = [
        ("tenant cliques", "datacenter-tenants", num_tenants),
        ("pipelines", "datacenter-pipelines", max(num_tenants // 4, 2)),
    ]
    for traffic_name, scenario_name, tenants in rows:
        scenario = get_scenario(scenario_name)
        assert isinstance(scenario, DatacenterScenario)
        stream = scenario.tenant_stream(
            tenants, num_requests, f"{seed}|e12|{traffic_name}"
        )
        datacenter = LinearDatacenter(stream.num_nodes)
        initial = Embedding(
            datacenter,
            random_arrangement(
                stream.virtual_nodes, seeded_rng(seed, "e12-init", traffic_name)
            ),
        )
        learner = (
            RandomizedCliqueLearner
            if stream.kind is GraphKind.CLIQUES
            else RandomizedLineLearner
        )
        mover = (
            MoveSmallerCliqueLearner
            if stream.kind is GraphKind.CLIQUES
            else MoveSmallerLineLearner
        )
        controllers = {
            "static": StaticController(datacenter),
            "demand-aware rand (paper)": DemandAwareController(
                datacenter, learner, name="demand-aware-rand"
            ),
            "demand-aware move-smaller": DemandAwareController(
                datacenter, mover, name="demand-aware-move-smaller"
            ),
        }
        # Downsampled migration traces of the streamed demand-aware
        # controllers: one event per `trace_every` reveals, exact totals.
        # Archived with the run, they form cross-run populations (one member
        # per master seed) that `runs report` can band.
        trace_every = max(1, stream.num_nodes // 1024)
        reports = {}
        for label, controller in controllers.items():
            run_rng = seeded_rng(seed, "e12-run", traffic_name, label)
            reports[label] = controller.run_stream(
                stream,
                initial_embedding=initial,
                rng=run_rng,
                batch_size=batch_size,
                **(
                    {"trace_every": trace_every}
                    if isinstance(controller, DemandAwareController)
                    else {}
                ),
            )
            trace = reports[label].trace
            if trace is not None and len(trace.events) >= 2:
                trace_samples.append(
                    TraceSample(
                        group=f"{traffic_name}/{reports[label].controller_name}",
                        seed=seed,
                        trace=trace,
                    )
                )
        static_total = reports["static"].total_cost
        for label, report in reports.items():
            ratio = (
                report.total_cost / static_total if static_total > 0 else float("inf")
            )
            table.add_row(
                traffic_name,
                tenants,
                stream.num_nodes,
                report.num_requests,
                batch_size,
                label,
                report.num_reveals,
                report.migration_cost,
                report.communication_cost,
                report.total_cost,
                ratio,
            )
            if label == "demand-aware rand (paper)":
                findings[f"demand-aware total / static ({traffic_name})"] = ratio
    return ExperimentResult(
        experiment_id="E12",
        title="Datacenter-scale embedding on streamed traffic (Section 1.2 at scale)",
        paper_claim="Demand-aware re-embedding keeps paying off at datacenter "
        "scale: with thousands of tenants and Zipf-skewed traffic, a bounded "
        "migration investment removes most of the communication cost that a "
        "static embedding keeps paying.",
        tables=[table],
        findings=findings,
        notes=[
            "Traffic is generated lazily by the repro.workloads streams "
            "(datacenter-tenants / datacenter-pipelines scenarios): peak "
            "memory is bounded by the batch size — the request list is never "
            "materialized — and the embedding's O(n) slot maps are rebuilt "
            "once per batch instead of once per reveal.",
            "The offline oracle is omitted at this scale: its single-jump "
            "target needs an offline-optimum computation over the full "
            "pattern, which is the one step that does not stream.",
            "The demand-aware controllers record a downsampled migration "
            "trace (exact totals, one event per "
            "max(1, nodes // 1024) reveals); archived across master seeds "
            "these form the populations `python -m repro runs report` bands "
            "for the migration side of the trade-off, next to the "
            "communication totals in this table.",
        ],
        traces=tuple(trace_samples),
    )
