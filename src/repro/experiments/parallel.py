"""Parallel experiment execution with deterministic, schedule-independent results.

Two fan-out levels:

* :func:`run_trials_parallel` spreads the independent trials of one
  :func:`~repro.core.simulator.run_trials` batch across worker processes.
  Each trial's randomness is derived solely from ``(seed, trial index)`` —
  never from worker identity or scheduling — so the assembled result list is
  bit-identical to the sequential path, whatever the worker count.
* :func:`run_experiments_parallel` runs independent experiments of the E1–E14
  suite in separate workers; each experiment is already a pure function of
  ``(scale, seed)``, so here too parallelism cannot change any number.

Worker-count resolution is shared by every entry point (``run_trials``,
``run_all``, ``python -m repro experiments --jobs N``, the benchmark
harness): an explicit ``jobs`` argument wins, otherwise the ``REPRO_JOBS``
environment variable, otherwise 1.  A pool is only spun up when it can help
(more than one work item and more than one job).
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.envconfig import read_env_positive_int
from repro.errors import ExperimentError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.algorithm import OnlineMinLAAlgorithm
    from repro.core.cost import SimulationResult
    from repro.core.instance import OnlineMinLAInstance
    from repro.experiments.runner import ExperimentResult, ExperimentScale

#: Environment variable consulted when no explicit ``jobs`` value is given.
JOBS_ENV_VAR = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: explicit argument, else ``REPRO_JOBS``, else 1.

    The environment value is validated through the shared
    :mod:`repro.envconfig` helper — a mis-typed ``REPRO_JOBS`` raises a
    clear error instead of silently serializing a run meant to be parallel.
    """
    if jobs is None:
        return read_env_positive_int(JOBS_ENV_VAR, default=1, error=ExperimentError)
    if jobs < 1:
        raise ExperimentError(f"jobs must be a positive integer, got {jobs}")
    return jobs


def is_picklable(value: object) -> bool:
    """Whether ``value`` survives pickling (required to ship it to a worker).

    Lambdas, closures and locally-defined classes are not picklable; the
    sequential paths accept them, so env-driven opportunistic parallelism
    (``REPRO_JOBS``) checks this first and falls back to the sequential loop
    instead of crashing previously-valid callers.
    """
    try:
        pickle.dumps(value)
    except Exception:
        return False
    return True


#: Cached worker pools, keyed by the resolved ``jobs`` value (not the task
#: count), reused across fan-out calls so nested experiment loops do not pay
#: pool spawn/teardown per ``run_trials`` — and so one process keeps exactly
#: one pool per configured worker count.  ``ProcessPoolExecutor`` spawns its
#: workers lazily, so submitting fewer tasks than ``max_workers`` does not
#: fork idle processes.
_POOLS: Dict[int, ProcessPoolExecutor] = {}


def _run_in_pool(
    workers: int, fn: Callable, argument_tuples: Sequence[Tuple]
) -> List:
    """Run ``fn(*arguments)`` for every tuple on the cached ``workers``-wide pool.

    Results come back in submission order.  A broken pool (a worker died) is
    evicted from the cache before the error propagates, so the next call
    starts from a fresh pool.
    """
    pool = _POOLS.get(workers)
    if pool is None:
        pool = _POOLS[workers] = ProcessPoolExecutor(max_workers=workers)
    try:
        futures = [pool.submit(fn, *arguments) for arguments in argument_tuples]
        return [future.result() for future in futures]
    except BrokenExecutor:
        _POOLS.pop(workers, None)
        raise


def _partition_trials(num_trials: int, jobs: int) -> List[range]:
    """Split ``range(num_trials)`` into at most ``jobs`` contiguous batches."""
    batches = min(jobs, num_trials)
    base, extra = divmod(num_trials, batches)
    ranges: List[range] = []
    start = 0
    for index in range(batches):
        size = base + (1 if index < extra else 0)
        ranges.append(range(start, start + size))
        start += size
    return ranges


def _disable_nested_fan_out() -> None:
    """Pin ``REPRO_JOBS=1`` inside a worker process.

    Workers inherit the parent's environment, so without this a fan-out at
    one level (e.g. experiments across workers) would make every inner
    ``run_trials`` call spawn its own pool — up to ``jobs²`` concurrent
    processes of oversubscription.  One fan-out level at a time.
    """
    os.environ[JOBS_ENV_VAR] = "1"


def _trial_batch_worker(
    algorithm_factory: "Callable[[], OnlineMinLAAlgorithm]",
    instance: "OnlineMinLAInstance",
    trial_offset: int,
    num_trials: int,
    seed: int,
    verify: bool,
) -> "List[SimulationResult]":
    """Run one contiguous batch of trials (executed in a worker process)."""
    from repro.core.simulator import run_trials_sequential

    _disable_nested_fan_out()
    return run_trials_sequential(
        algorithm_factory,
        instance,
        num_trials,
        seed=seed,
        verify=verify,
        trial_offset=trial_offset,
    )


def run_trials_parallel(
    algorithm_factory: "Callable[[], OnlineMinLAAlgorithm]",
    instance: "OnlineMinLAInstance",
    num_trials: int,
    seed: int = 0,
    verify: bool = True,
    jobs: Optional[int] = None,
) -> "List[SimulationResult]":
    """Run independent trials across worker processes.

    The result list is bit-identical to
    :func:`repro.core.simulator.run_trials_sequential` with the same
    arguments: trial ``t`` always uses ``random.Random(f"{seed}|trial-{t}")``
    and results are reassembled in trial order.

    ``algorithm_factory`` and ``instance`` must be picklable (module-level
    classes/functions, not lambdas or closures) — they are shipped to worker
    processes.
    """
    from repro.core.simulator import run_trials_sequential

    jobs = resolve_jobs(jobs)
    if num_trials < 1:
        raise ExperimentError("num_trials must be at least 1")
    if jobs == 1 or num_trials == 1:
        return run_trials_sequential(
            algorithm_factory, instance, num_trials, seed=seed, verify=verify
        )
    if not is_picklable(algorithm_factory):
        raise ExperimentError(
            "parallel run_trials requires a picklable algorithm_factory "
            "(a module-level class or function, not a lambda or closure); "
            f"got {algorithm_factory!r}"
        )
    batches = _partition_trials(num_trials, jobs)
    batch_results = _run_in_pool(
        jobs,
        _trial_batch_worker,
        [
            (algorithm_factory, instance, batch.start, len(batch), seed, verify)
            for batch in batches
        ],
    )
    results: "List[SimulationResult]" = []
    for batch in batch_results:
        results.extend(batch)
    return results


def _experiment_worker(
    experiment_id: str, scale: "ExperimentScale", seed: int
) -> "Tuple[ExperimentResult, float]":
    """Run one registered experiment (executed in a worker process).

    Returns the result together with its wall-clock time, so the run store
    can archive a real per-experiment timing sample even when experiments
    fan out across processes.  User scenarios are re-discovered inside the
    worker: registries are per-process state, and E11 must sweep the same
    catalog whatever the worker count.
    """
    from repro.workloads.discovery import autodiscover_scenarios

    _disable_nested_fan_out()
    autodiscover_scenarios()
    return _timed_experiment(experiment_id, scale, seed)


def _timed_experiment(
    experiment_id: str, scale: "ExperimentScale", seed: int
) -> "Tuple[ExperimentResult, float]":
    """Run one registered experiment under a wall-clock measurement."""
    from repro.experiments.suite import ALL_EXPERIMENTS
    from repro.obs.clock import now as monotonic_now

    start = monotonic_now()
    result = ALL_EXPERIMENTS[experiment_id](scale, seed)
    return result, monotonic_now() - start


def run_experiments_timed(
    experiment_ids: Sequence[str],
    scale: "ExperimentScale",
    seed: int = 0,
    jobs: Optional[int] = None,
) -> "List[Tuple[ExperimentResult, float]]":
    """Run the selected experiments and return ``(result, seconds)`` pairs.

    The results are bit-identical to a sequential run for every worker
    count; the timings are the per-experiment wall-clock measurements (taken
    inside the worker when running parallel) and naturally vary between
    invocations — they are metadata, never part of any result.  User
    scenarios from ``.repro-scenarios.toml`` are discovered on both paths
    (here for the sequential loop, inside :func:`_experiment_worker` for
    pool workers), so the E11 sweep sees the same catalog either way.
    """
    from repro.experiments.suite import ALL_EXPERIMENTS
    from repro.workloads.discovery import autodiscover_scenarios

    unknown = [name for name in experiment_ids if name not in ALL_EXPERIMENTS]
    if unknown:
        raise ExperimentError(f"unknown experiment ids: {unknown}")
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(experiment_ids) <= 1:
        autodiscover_scenarios()
        return [_timed_experiment(name, scale, seed) for name in experiment_ids]
    return _run_in_pool(
        jobs,
        _experiment_worker,
        [(name, scale, seed) for name in experiment_ids],
    )


def run_experiments_parallel(
    experiment_ids: Sequence[str],
    scale: "ExperimentScale",
    seed: int = 0,
    jobs: Optional[int] = None,
) -> "List[ExperimentResult]":
    """Run the selected experiments across worker processes, in input order.

    Every experiment is a pure function of ``(scale, seed)``, so the returned
    list is identical to running them sequentially.
    """
    return [
        result
        for result, _ in run_experiments_timed(
            experiment_ids, scale, seed=seed, jobs=jobs
        )
    ]
