"""Parallel experiment execution with deterministic, schedule-independent results.

Two fan-out levels:

* :func:`run_trials_parallel` spreads the independent trials of one
  :func:`~repro.core.simulator.run_trials` batch across worker processes.
  Each trial's randomness is derived solely from ``(seed, trial index)`` —
  never from worker identity or scheduling — so the assembled result list is
  bit-identical to the sequential path, whatever the worker count.
* :func:`run_experiments_parallel` runs independent experiments of the E1–E14
  suite in separate workers; each experiment is already a pure function of
  ``(scale, seed)``, so here too parallelism cannot change any number.

Worker-count resolution is shared by every entry point (``run_trials``,
``run_all``, ``python -m repro experiments --jobs N``, the benchmark
harness): an explicit ``jobs`` argument wins, otherwise the ``REPRO_JOBS``
environment variable, otherwise 1.  A pool is only spun up when it can help
(more than one work item and more than one job).
"""

from __future__ import annotations

import os
import pickle
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, TYPE_CHECKING

from repro.envconfig import read_env_positive_int
from repro.errors import ExperimentError
from repro.obs.profile import (
    ProfileSnapshot,
    ZoneProfiler,
    active_profiler,
    add_work,
    set_profiler,
    work_delta,
    work_snapshot,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.algorithm import OnlineMinLAAlgorithm
    from repro.core.cost import SimulationResult
    from repro.core.instance import OnlineMinLAInstance
    from repro.experiments.runner import ExperimentResult, ExperimentScale

#: Environment variable consulted when no explicit ``jobs`` value is given.
JOBS_ENV_VAR = "REPRO_JOBS"


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Resolve a worker count: explicit argument, else ``REPRO_JOBS``, else 1.

    The environment value is validated through the shared
    :mod:`repro.envconfig` helper — a mis-typed ``REPRO_JOBS`` raises a
    clear error instead of silently serializing a run meant to be parallel.
    """
    if jobs is None:
        return read_env_positive_int(JOBS_ENV_VAR, default=1, error=ExperimentError)
    if jobs < 1:
        raise ExperimentError(f"jobs must be a positive integer, got {jobs}")
    return jobs


def is_picklable(value: object) -> bool:
    """Whether ``value`` survives pickling (required to ship it to a worker).

    Lambdas, closures and locally-defined classes are not picklable; the
    sequential paths accept them, so env-driven opportunistic parallelism
    (``REPRO_JOBS``) checks this first and falls back to the sequential loop
    instead of crashing previously-valid callers.
    """
    try:
        pickle.dumps(value)
    except Exception:
        return False
    return True


#: Cached worker pools, keyed by the resolved ``jobs`` value (not the task
#: count), reused across fan-out calls so nested experiment loops do not pay
#: pool spawn/teardown per ``run_trials`` — and so one process keeps exactly
#: one pool per configured worker count.  ``ProcessPoolExecutor`` spawns its
#: workers lazily, so submitting fewer tasks than ``max_workers`` does not
#: fork idle processes.
_POOLS: Dict[int, ProcessPoolExecutor] = {}


def _run_in_pool(
    workers: int, fn: Callable, argument_tuples: Sequence[Tuple]
) -> List:
    """Run ``fn(*arguments)`` for every tuple on the cached ``workers``-wide pool.

    Results come back in submission order.  A broken pool (a worker died) is
    evicted from the cache before the error propagates, so the next call
    starts from a fresh pool.
    """
    pool = _POOLS.get(workers)
    if pool is None:
        pool = _POOLS[workers] = ProcessPoolExecutor(max_workers=workers)
    try:
        futures = [pool.submit(fn, *arguments) for arguments in argument_tuples]
        return [future.result() for future in futures]
    except BrokenExecutor:
        _POOLS.pop(workers, None)
        raise


def _partition_trials(num_trials: int, jobs: int) -> List[range]:
    """Split ``range(num_trials)`` into at most ``jobs`` contiguous batches."""
    batches = min(jobs, num_trials)
    base, extra = divmod(num_trials, batches)
    ranges: List[range] = []
    start = 0
    for index in range(batches):
        size = base + (1 if index < extra else 0)
        ranges.append(range(start, start + size))
        start += size
    return ranges


def _disable_nested_fan_out() -> None:
    """Pin ``REPRO_JOBS=1`` inside a worker process.

    Workers inherit the parent's environment, so without this a fan-out at
    one level (e.g. experiments across workers) would make every inner
    ``run_trials`` call spawn its own pool — up to ``jobs²`` concurrent
    processes of oversubscription.  One fan-out level at a time.
    """
    os.environ[JOBS_ENV_VAR] = "1"


def _trial_batch_worker(
    algorithm_factory: "Callable[[], OnlineMinLAAlgorithm]",
    instance: "OnlineMinLAInstance",
    trial_offset: int,
    num_trials: int,
    seed: int,
    verify: bool,
    profile: bool = False,
) -> "Tuple[List[SimulationResult], Dict[str, int], Optional[ProfileSnapshot]]":
    """Run one contiguous batch of trials (executed in a worker process).

    Returns the results together with the batch's work-counter *delta* and
    (when the parent requested profiling) a zone-profile snapshot.  Deltas,
    not absolutes: pool workers are cached and reused across tasks, so
    their counters carry history — only the difference belongs to this
    batch.  The parent folds the delta in, which is what keeps
    ``work_snapshot()`` bit-identical between ``--jobs 1`` and ``--jobs N``.
    """
    from repro.core.simulator import run_trials_sequential

    _disable_nested_fan_out()
    # The active profiler is process-global and crossed the fork with
    # whatever state the parent had at pool-creation time; reinstall
    # explicitly so profiling follows the parent's request for *this* task.
    profiler = ZoneProfiler() if profile else None
    set_profiler(profiler)
    before = work_snapshot()
    try:
        results = run_trials_sequential(
            algorithm_factory,
            instance,
            num_trials,
            seed=seed,
            verify=verify,
            trial_offset=trial_offset,
        )
    finally:
        set_profiler(None)
    return (
        results,
        work_delta(before, work_snapshot()),
        None if profiler is None else profiler.snapshot(),
    )


def run_trials_parallel(
    algorithm_factory: "Callable[[], OnlineMinLAAlgorithm]",
    instance: "OnlineMinLAInstance",
    num_trials: int,
    seed: int = 0,
    verify: bool = True,
    jobs: Optional[int] = None,
) -> "List[SimulationResult]":
    """Run independent trials across worker processes.

    The result list is bit-identical to
    :func:`repro.core.simulator.run_trials_sequential` with the same
    arguments: trial ``t`` always uses ``random.Random(f"{seed}|trial-{t}")``
    and results are reassembled in trial order.

    ``algorithm_factory`` and ``instance`` must be picklable (module-level
    classes/functions, not lambdas or closures) — they are shipped to worker
    processes.
    """
    from repro.core.simulator import run_trials_sequential

    jobs = resolve_jobs(jobs)
    if num_trials < 1:
        raise ExperimentError("num_trials must be at least 1")
    if jobs == 1 or num_trials == 1:
        return run_trials_sequential(
            algorithm_factory, instance, num_trials, seed=seed, verify=verify
        )
    if not is_picklable(algorithm_factory):
        raise ExperimentError(
            "parallel run_trials requires a picklable algorithm_factory "
            "(a module-level class or function, not a lambda or closure); "
            f"got {algorithm_factory!r}"
        )
    batches = _partition_trials(num_trials, jobs)
    parent_profiler = active_profiler()
    profile = parent_profiler is not None
    batch_outputs = _run_in_pool(
        jobs,
        _trial_batch_worker,
        [
            (
                algorithm_factory,
                instance,
                batch.start,
                len(batch),
                seed,
                verify,
                profile,
            )
            for batch in batches
        ],
    )
    results: "List[SimulationResult]" = []
    for batch_results, batch_work, batch_profile in batch_outputs:
        results.extend(batch_results)
        add_work(batch_work)
        if parent_profiler is not None and batch_profile is not None:
            parent_profiler.absorb(
                batch_profile, prefix=parent_profiler.current_path()
            )
    return results


@dataclass(frozen=True)
class TimedExperiment:
    """One experiment's result plus its observability sidecars.

    ``seconds`` is wall-clock (machine-dependent metadata), ``work`` is the
    deterministic work-counter delta the experiment performed (bit-identical
    across worker counts and backends — a correctness surface), and
    ``profile`` is the per-experiment zone snapshot when profiling was
    enabled (None otherwise).
    """

    result: "ExperimentResult"
    seconds: float
    work: Dict[str, int]
    profile: Optional[ProfileSnapshot] = None


def _experiment_worker(
    experiment_id: str,
    scale: "ExperimentScale",
    seed: int,
    profile: bool = False,
) -> TimedExperiment:
    """Run one registered experiment (executed in a worker process).

    Returns the result together with its wall-clock time and work-counter
    delta, so the run store can archive real per-experiment samples even
    when experiments fan out across processes.  User scenarios are
    re-discovered inside the worker: registries are per-process state, and
    E11 must sweep the same catalog whatever the worker count.
    """
    from repro.workloads.discovery import autodiscover_scenarios

    _disable_nested_fan_out()
    # Reinstall the profiler explicitly: the module-global one crossed the
    # fork at pool-creation time and does not reflect the parent's current
    # request.  Installing a throwaway parent profiler makes
    # _timed_experiment take its profiling path and hand back a snapshot.
    set_profiler(ZoneProfiler() if profile else None)
    try:
        autodiscover_scenarios()
        return _timed_experiment(experiment_id, scale, seed)
    finally:
        set_profiler(None)


def _timed_experiment(
    experiment_id: str, scale: "ExperimentScale", seed: int
) -> TimedExperiment:
    """Run one registered experiment under wall-clock and work measurement.

    When a profiler is active, the experiment runs under a *fresh* profiler
    (so the returned snapshot covers exactly this experiment) whose zones
    are folded back into the enclosing profiler afterwards.
    """
    from repro.experiments.suite import ALL_EXPERIMENTS
    from repro.obs.clock import now as monotonic_now
    from repro.obs.profile import profile_zone

    parent_profiler = active_profiler()
    profiler = None
    if parent_profiler is not None:
        profiler = ZoneProfiler()
        set_profiler(profiler)
    before = work_snapshot()
    start = monotonic_now()
    try:
        with profile_zone("experiment"):
            result = ALL_EXPERIMENTS[experiment_id](scale, seed)
    finally:
        if parent_profiler is not None:
            set_profiler(parent_profiler)
    seconds = monotonic_now() - start
    snapshot = None if profiler is None else profiler.snapshot()
    if parent_profiler is not None and snapshot is not None:
        parent_profiler.absorb(
            snapshot, prefix=parent_profiler.current_path()
        )
    return TimedExperiment(
        result=result,
        seconds=seconds,
        work=work_delta(before, work_snapshot()),
        profile=snapshot,
    )


def run_experiments_timed(
    experiment_ids: Sequence[str],
    scale: "ExperimentScale",
    seed: int = 0,
    jobs: Optional[int] = None,
) -> "List[TimedExperiment]":
    """Run the selected experiments, returning :class:`TimedExperiment` rows.

    The results and work counters are bit-identical to a sequential run for
    every worker count (worker deltas are folded back into this process's
    counters); the timings are per-experiment wall-clock measurements
    (taken inside the worker when running parallel) and naturally vary
    between invocations — they are metadata, never part of any result.
    User scenarios from ``.repro-scenarios.toml`` are discovered on both
    paths (here for the sequential loop, inside :func:`_experiment_worker`
    for pool workers), so the E11 sweep sees the same catalog either way.
    """
    from repro.experiments.suite import ALL_EXPERIMENTS
    from repro.workloads.discovery import autodiscover_scenarios

    unknown = [name for name in experiment_ids if name not in ALL_EXPERIMENTS]
    if unknown:
        raise ExperimentError(f"unknown experiment ids: {unknown}")
    jobs = resolve_jobs(jobs)
    if jobs == 1 or len(experiment_ids) <= 1:
        autodiscover_scenarios()
        return [_timed_experiment(name, scale, seed) for name in experiment_ids]
    parent_profiler = active_profiler()
    runs: "List[TimedExperiment]" = _run_in_pool(
        jobs,
        _experiment_worker,
        [
            (name, scale, seed, parent_profiler is not None)
            for name in experiment_ids
        ],
    )
    for run in runs:
        add_work(run.work)
        if parent_profiler is not None and run.profile is not None:
            parent_profiler.absorb(
                run.profile, prefix=parent_profiler.current_path()
            )
    return runs


def run_experiments_parallel(
    experiment_ids: Sequence[str],
    scale: "ExperimentScale",
    seed: int = 0,
    jobs: Optional[int] = None,
) -> "List[ExperimentResult]":
    """Run the selected experiments across worker processes, in input order.

    Every experiment is a pure function of ``(scale, seed)``, so the returned
    list is identical to running them sequentially.
    """
    return [
        run.result
        for run in run_experiments_timed(
            experiment_ids, scale, seed=seed, jobs=jobs
        )
    ]
