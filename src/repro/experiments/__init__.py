"""Experiment harness: metrics, tables and the E1–E10 suite."""

from repro.experiments.metrics import SampleSummary, geometric_mean, mean, sample_std, summarize
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentScale,
    scale_pick,
    seeded_rng,
)
from repro.experiments.suite import ALL_EXPERIMENTS, run_all, write_experiments_markdown
from repro.experiments.tables import ResultTable

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "ExperimentScale",
    "ResultTable",
    "SampleSummary",
    "geometric_mean",
    "mean",
    "run_all",
    "sample_std",
    "scale_pick",
    "seeded_rng",
    "summarize",
    "write_experiments_markdown",
]
