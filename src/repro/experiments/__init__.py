"""Experiment harness: metrics, tables, the E1–E14 suite and the parallel runner."""

from repro.experiments.metrics import SampleSummary, geometric_mean, mean, sample_std, summarize
from repro.experiments.parallel import (
    resolve_jobs,
    run_experiments_parallel,
    run_trials_parallel,
)
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentScale,
    scale_pick,
    seeded_rng,
)
from repro.experiments.suite import ALL_EXPERIMENTS, run_all, write_experiments_markdown
from repro.experiments.tables import ResultTable

__all__ = [
    "ALL_EXPERIMENTS",
    "ExperimentResult",
    "ExperimentScale",
    "ResultTable",
    "SampleSummary",
    "geometric_mean",
    "mean",
    "resolve_jobs",
    "run_all",
    "run_experiments_parallel",
    "run_trials_parallel",
    "sample_std",
    "scale_pick",
    "seeded_rng",
    "summarize",
    "write_experiments_markdown",
]
