"""Experiment E15: soak serving — flat memory, bounded histogram error.

E15 is the observability subsystem's measurement anchor.  It soaks the
serving stack (:func:`repro.service.loadgen.run_scenario_soak`) on both
worker backends, streaming the same scenario in cycles until the request
horizon is reached, and verifies the three claims the default
(non-retained) serving path makes:

1. **Flat memory.**  With per-request retention off, the broker process's
   RSS must stay within 10% of its warm-up mark while the served request
   count grows 100× — the fleet's state is O(shards × buckets), never
   O(requests).
2. **Bounded percentile error.**  On a smaller retained run the
   fixed-bucket histogram's p50/p95/p99 must bound the exact nearest-rank
   percentiles within one bucket width
   (:meth:`~repro.obs.registry.HistogramSnapshot.percentile_bounds`).
3. **Bit-identical aggregation.**  Histograms built from the
   *deterministic* per-request communication costs must carry identical
   integer counts on the thread and process backends — aggregation adds
   no backend-dependent noise.

Like E13, the throughput/RSS columns are wall-clock/machine measurements;
the bound checks and count identities are exact gates.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.experiments.charts import horizontal_bar_chart
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentScale,
    scale_pick,
)
from repro.experiments.tables import ResultTable
from repro.obs.registry import FixedBucketHistogram, log_bucket_edges
from repro.service.broker import BACKENDS
from repro.service.loadgen import run_scenario_loadgen, run_scenario_soak
from repro.service.metrics import percentile
from repro.workloads.registry import get_scenario

#: The scenario E15 soaks (tenant-skewed clique traffic, multi-component
#: so both shards serve).
SOAK_SCENARIO = "zipf-tenants"

#: Fixed edges for the deterministic served-cost histograms of the
#: bit-identity check (integer swap counts, 1 .. 10^4 per request).
COST_BUCKET_EDGES = log_bucket_edges(1.0, 1e4, 2)

#: The percentiles every check below exercises.
QUANTILES = (0.50, 0.95, 0.99)


def _bound_violations(report) -> Tuple[int, float]:
    """Check claim 2 on one retained run.

    Compares the fleet histogram (``report.snapshot.latency``) against the
    exact per-request latencies the retained results carry.  Returns
    ``(violations, worst_bucket_ms)``: how many of p50/p95/p99 fell
    outside their histogram bucket, and the widest bucket (ms) those
    bounds spanned — the "within one bucket width" yardstick.
    """
    histogram = report.snapshot.latency
    exact_seconds = [result.latency_seconds for result in report.results]
    violations = 0
    worst_bucket_ms = 0.0
    for q in QUANTILES:
        bounds = histogram.percentile_bounds(q)
        if bounds is None:
            violations += 1
            continue
        lower, upper = bounds
        exact = percentile(exact_seconds, q)
        # Half-open bucket (lower, upper]: the exact nearest-rank value
        # must land in the bucket the histogram reports.
        if not (lower < exact <= upper or exact == lower == 0.0):
            violations += 1
        worst_bucket_ms = max(worst_bucket_ms, (upper - lower) * 1_000.0)
    return violations, worst_bucket_ms


def run_e15_soak_observability(
    scale: ExperimentScale = ExperimentScale.BENCH, seed: int = 0
) -> ExperimentResult:
    """Soak serving: RSS vs served requests, histogram error, count identity."""
    num_nodes: int = scale_pick(scale, 24, 48, 64)
    stream_requests: int = scale_pick(scale, 500, 2_000, 5_000)
    soak_requests: int = scale_pick(scale, 2_000, 20_000, 1_000_000)
    retained_requests: int = scale_pick(scale, 400, 1_500, 6_000)
    num_shards = 2
    batch_size = 4
    scenario = get_scenario(SOAK_SCENARIO)
    # The warm-up mark: RSS growth is judged from 1% of the horizon (the
    # first checkpoint) to the final checkpoint at 100× that count.
    checkpoint_marks = [max(soak_requests // 100, 1), max(soak_requests // 10, 1)]

    soak_table = ResultTable(
        title="E15 — soak: RSS and tail latency vs served request count",
        columns=[
            "backend",
            "requests",
            "elapsed s",
            "throughput req/s",
            "p99 ms",
            "rss MB",
        ],
    )
    findings: Dict[str, float] = {}
    notes: List[str] = []
    chart_labels: List[str] = []
    chart_values: List[float] = []
    rss_available = True
    for backend in BACKENDS:
        soak = run_scenario_soak(
            scenario,
            num_nodes=num_nodes,
            num_requests=stream_requests,
            seed=seed,
            num_shards=num_shards,
            batch_size=batch_size,
            queue_capacity=max(stream_requests, 1),
            backend=backend,
            max_requests=soak_requests,
            checkpoint_requests=checkpoint_marks,
        )
        for checkpoint in soak.checkpoints:
            soak_table.add_row(
                backend,
                checkpoint.requests_submitted,
                checkpoint.elapsed_seconds,
                checkpoint.throughput,
                checkpoint.p99_ms if checkpoint.p99_ms is not None else float("nan"),
                checkpoint.rss_bytes / 1e6
                if checkpoint.rss_bytes is not None
                else float("nan"),
            )
            if checkpoint.rss_bytes is not None:
                chart_labels.append(
                    f"{backend} req={checkpoint.requests_submitted}"
                )
                chart_values.append(checkpoint.rss_bytes / 1e6)
        growth = soak.rss_growth()
        if growth is None:
            rss_available = False
            # A host without /proc cannot fail the flat-memory gate; the
            # note records that the claim went unmeasured, not refuted.
            findings[f"rss growth {backend} (x)"] = 1.0
        else:
            findings[f"rss growth {backend} (x)"] = growth
        findings[f"soak throughput {backend} (req/s)"] = (
            soak.num_requests / soak.wall_seconds if soak.wall_seconds > 0 else 0.0
        )

    # Claims 2 and 3 need per-request ground truth, so they run retained
    # (the opt-in audit path) at a size where O(requests) memory is fine.
    bound_violations = 0
    worst_bucket_ms = 0.0
    cost_counts: Dict[str, Tuple[int, ...]] = {}
    for backend in BACKENDS:
        report = run_scenario_loadgen(
            scenario,
            num_nodes=num_nodes,
            num_requests=retained_requests,
            seed=seed,
            num_shards=num_shards,
            batch_size=batch_size,
            queue_capacity=max(retained_requests, 1),
            backend=backend,
            retain_requests=True,
        )
        violations, bucket_ms = _bound_violations(report)
        bound_violations += violations
        worst_bucket_ms = max(worst_bucket_ms, bucket_ms)
        cost_histogram = FixedBucketHistogram(COST_BUCKET_EDGES)
        for result in sorted(report.results, key=lambda r: r.request_index):
            cost_histogram.record(float(result.communication_cost))
        cost_counts[backend] = cost_histogram.snapshot().counts
    count_deviation = max(
        abs(a - b)
        for a, b in zip(cost_counts["thread"], cost_counts["process"])
    )
    findings["histogram bound violations"] = float(bound_violations)
    findings["worst percentile bucket width (ms)"] = worst_bucket_ms
    findings["max cross-backend count deviation"] = float(count_deviation)

    notes.append(
        "RSS is the broker process's VmRSS; with retention off the fleet "
        "keeps O(shards × buckets) state, so the resident set must stay "
        f"within {1.10:.2f}× of the 1%-horizon warm-up mark while served "
        f"requests grow 100× (to {soak_requests}).  Throughput and RSS are "
        "machine measurements; the bound and identity findings are exact."
    )
    notes.append(
        "'histogram bound violations' counts p50/p95/p99 values (per "
        "backend) whose exact nearest-rank percentile fell outside the "
        "fixed log-spaced bucket the default histogram summary reported — "
        "the histogram may only be wrong by less than one bucket width "
        f"(worst bucket spanned here: {worst_bucket_ms:.3f} ms)."
    )
    notes.append(
        "'max cross-backend count deviation' compares histograms of the "
        "deterministic per-request communication costs across thread and "
        "process backends bucket by bucket; integer-count aggregation must "
        "be bit-identical (0 everywhere), unlike wall-clock latency whose "
        "values legitimately differ run to run."
    )
    if not rss_available:
        notes.append(
            "/proc/self/status was unavailable on this host, so RSS growth "
            "could not be measured; the flat-memory gate records 1.0 "
            "(unmeasured), and the latency/identity gates still apply."
        )
    if chart_labels:
        notes.append(
            "broker RSS (MB) at each soak checkpoint — flat while the "
            "served request count grows 100×:\n"
            + horizontal_bar_chart(chart_labels, chart_values)
        )
    return ExperimentResult(
        experiment_id="E15",
        title="Soak serving: flat memory and bounded histogram error",
        paper_claim="An online arrangement server must run indefinitely: "
        "its memory footprint may depend on the deployment (shards, "
        "histogram buckets) but never on how many requests it has served, "
        "and the O(1)-memory latency summaries it emits must provably "
        "bound the exact percentiles it no longer retains.",
        tables=[soak_table],
        findings=findings,
        notes=notes,
    )
