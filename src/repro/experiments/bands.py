"""Traced multi-seed populations and their variance-band captions.

E2, E3 and E11 all record the same kind of evidence for the run store: a
small population of streamed stride-1 traces of one algorithm on one fixed
instance, differing only in the random stream — and render the same caption
from it (the shaded min/mean/max cost band plus the harmonic-slope bands
with bootstrap CIs).  This module is the single implementation both use, so
the caption format and the seeding discipline cannot drift apart between
experiments.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Union

from repro.core.simulator import run_online
from repro.experiments.charts import variance_band_chart
from repro.experiments.runner import seeded_rng
from repro.runstore.stats import cost_bands, harmonic_slope_bands
from repro.telemetry.trace import TraceSample


def traced_population(
    factory: Callable,
    instance,
    group: str,
    num_seeds: int,
    seed: int,
    *salt: object,
) -> List[TraceSample]:
    """Streamed stride-1 traces of ``factory()`` on ``instance``, one per seed.

    Trace seed ``t`` runs with ``seeded_rng(seed, *salt, t)``, so the
    population is a pure function of ``(seed, salt, num_seeds)`` — identical
    for every worker count, and reproducibly extendable by raising
    ``num_seeds``.
    """
    return [
        TraceSample(
            group=group,
            seed=trace_seed,
            trace=run_online(
                factory(),
                instance,
                rng=seeded_rng(seed, *salt, trace_seed),
                trace_every=1,
            ).trace,
        )
        for trace_seed in range(num_seeds)
    ]


def band_caption(
    samples: Sequence[TraceSample], band_seed: Union[int, str]
) -> str:
    """The shaded cost band + harmonic-slope bands line for one population."""
    traces = [sample.trace for sample in samples]
    band = cost_bands(traces)["total"]
    slopes = harmonic_slope_bands(traces, seed=band_seed)
    return f"{variance_band_chart(band)} — {slopes.summary()}"
