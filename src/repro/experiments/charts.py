"""Terminal-friendly charts (no plotting dependencies).

The experiments and examples occasionally want to *show* a trend — how the
per-step cost evolves, how ratios compare across algorithms — without pulling
in a plotting stack.  These helpers render small ASCII/Unicode charts that
look reasonable in a terminal and in Markdown code blocks:

* :func:`sparkline` — a one-line block-character profile of a series,
* :func:`horizontal_bar_chart` — labelled bars scaled to a maximum width,
* :func:`scaling_table` — a two-column "n vs value" view with a sparkline
  footer, used by the examples to display growth rates,
* :func:`cost_trajectory_chart` — the cumulative-cost profile of a streamed
  :class:`~repro.telemetry.trace.CostTrace`, with its phase split; this is
  how E2/E3 show cost trajectories without recording any trajectory
  snapshots,
* :func:`variance_band_chart` — the shaded min/mean/max band of a
  cross-seed trace population (three sparklines on one shared scale), which
  is how E2/E3/E11 and ``python -m repro runs report`` draw variance bands
  once at least three seeds are stored.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ExperimentError
from repro.experiments.metrics import trace_cumulative_costs, trace_phase_shares
from repro.telemetry.trace import CostTrace, downsample_events

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(
    values: Sequence[float],
    low: Optional[float] = None,
    high: Optional[float] = None,
) -> str:
    """A one-line block-character rendering of a numeric series.

    Values are scaled to the series' own min/max by default; passing
    explicit ``low``/``high`` bounds puts several sparklines on one shared
    scale (what the variance-band chart needs to make its min/mean/max
    lines comparable).  A zero-span scale renders as a flat line of middle
    blocks.
    """
    if not values:
        raise ExperimentError("sparkline() needs at least one value")
    low = min(values) if low is None else low
    high = max(values) if high is None else high
    if high < low:
        raise ExperimentError(f"sparkline() scale is inverted: [{low}, {high}]")
    if high == low:
        return _BLOCKS[3] * len(values)
    span = high - low
    characters = []
    for value in values:
        position = min(max((value - low) / span, 0.0), 1.0)
        characters.append(_BLOCKS[int(position * (len(_BLOCKS) - 1))])
    return "".join(characters)


def horizontal_bar_chart(
    labels: Sequence[str], values: Sequence[float], width: int = 40
) -> str:
    """Labelled horizontal bars, scaled so the largest value spans ``width`` cells."""
    if len(labels) != len(values):
        raise ExperimentError("labels and values must have the same length")
    if not labels:
        raise ExperimentError("horizontal_bar_chart() needs at least one bar")
    if width < 1:
        raise ExperimentError("width must be positive")
    if any(value < 0 for value in values):
        raise ExperimentError("bar values must be non-negative")
    label_width = max(len(str(label)) for label in labels)
    maximum = max(values) or 1.0
    lines: List[str] = []
    for label, value in zip(labels, values):
        bar = "█" * max(int(round(value / maximum * width)), 1 if value > 0 else 0)
        lines.append(f"{str(label):<{label_width}} │{bar:<{width}} {value:,.1f}")
    return "\n".join(lines)


def scaling_table(
    sizes: Sequence[int], values: Sequence[float], value_label: str = "value"
) -> str:
    """A small "n vs value" table with growth factors and a sparkline footer."""
    if len(sizes) != len(values):
        raise ExperimentError("sizes and values must have the same length")
    if not sizes:
        raise ExperimentError("scaling_table() needs at least one row")
    lines = [f"{'n':>8} {value_label:>14} {'growth':>8}"]
    previous = None
    for size, value in zip(sizes, values):
        growth = "" if previous in (None, 0) else f"x{value / previous:.2f}"
        lines.append(f"{size:>8} {value:>14.2f} {growth:>8}")
        previous = value
    lines.append(f"{'trend':>8} {sparkline(values):>14}")
    return "\n".join(lines)


def cost_trajectory_chart(
    trace: CostTrace, max_points: int = 64, seed: int = 0
) -> str:
    """One-line cumulative-cost profile of a streamed trace.

    Renders the running total cost as a sparkline (downsampled
    deterministically to at most ``max_points`` events, which must leave
    room for the first and last event) followed by the trace's exact totals
    and moving/rearranging phase shares.  Works on traces of any stride —
    the totals come from the recorder's exact accumulators, not from the
    sampled events.
    """
    if max_points < 2:
        raise ExperimentError(
            f"cost_trajectory_chart() needs max_points >= 2, got {max_points}"
        )
    cumulative = trace_cumulative_costs(trace)
    if len(cumulative) > max_points:
        events = downsample_events(trace.events, max_points, seed)
        cumulative = [event.cumulative_cost for event in events]
    shares = trace_phase_shares(trace)
    return (
        f"{sparkline(cumulative)} total={trace.total_cost} "
        f"(moving {shares['moving']:.0%}, rearranging {shares['rearranging']:.0%}, "
        f"steps={trace.num_steps})"
    )


def _thin_indices(length: int, max_points: int) -> List[int]:
    """Evenly spaced sample indices keeping the first and last position."""
    if length <= max_points:
        return list(range(length))
    return sorted(
        {round(index * (length - 1) / (max_points - 1)) for index in range(max_points)}
    )


def variance_band_chart(band, max_points: int = 48) -> str:
    """One-line shaded band of a cross-seed cost population.

    ``band`` is a per-step mean/min/max summary (a
    :class:`repro.runstore.stats.Band` or anything exposing ``phase``,
    ``mean``, ``minimum``, ``maximum`` and ``num_traces``).  The three
    quantile lines render as sparklines on one *shared* scale — the min
    line visibly hugging the bottom of the range and the max line the top
    is the terminal equivalent of a shaded band — followed by the exact
    final mean and spread.  Thinning to ``max_points`` is deterministic
    (evenly spaced samples, first and last kept), so the same population
    always draws the same band.
    """
    if max_points < 2:
        raise ExperimentError(
            f"variance_band_chart() needs max_points >= 2, got {max_points}"
        )
    if not band.mean:
        raise ExperimentError("variance_band_chart() needs a non-empty band")
    keep = _thin_indices(len(band.mean), max_points)
    low = min(band.minimum)
    high = max(band.maximum)
    lines = {
        label: sparkline([series[index] for index in keep], low=low, high=high)
        for label, series in (
            ("min", band.minimum),
            ("mean", band.mean),
            ("max", band.maximum),
        )
    }
    final_low, final_high = band.minimum[-1], band.maximum[-1]
    return (
        f"{band.phase} band over {band.num_traces} seeds: "
        f"min {lines['min']} / mean {lines['mean']} / max {lines['max']} "
        f"final mean={band.mean[-1]:.1f} range=[{final_low:.0f}, {final_high:.0f}]"
    )
