"""Experiments E1–E5: competitive-ratio claims (Theorems 1, 2, 8, 15, 16).

Each function runs one experiment of the per-experiment index in
``DESIGN.md`` and returns an :class:`~repro.experiments.runner.ExperimentResult`.
The experiments measure empirical competitive ratios of the paper's
algorithms (and the ablation variants) against the offline-optimum bounds of
:mod:`repro.core.opt` and compare them with the paper's guarantees.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Sequence

from repro.adversary.line_adversary import run_line_adversary
from repro.adversary.tree_adversary import (
    expected_ratio_lower_bound,
    offline_cost_upper_bound,
    online_cost_lower_bound,
    tree_adversary_instance,
)
from repro.core.bounds import (
    det_competitive_bound,
    rand_cliques_ratio_bound,
    rand_lines_ratio_bound,
)
from repro.core.det import DeterministicClosestLearner, GreedyClosestLearner
from repro.minla.closest import DEFAULT_MAX_EXACT_BLOCKS
from repro.core.instance import OnlineMinLAInstance
from repro.core.opt import offline_optimum_bounds
from repro.core.rand_cliques import (
    MoveSmallerCliqueLearner,
    RandomizedCliqueLearner,
    UnbiasedCoinCliqueLearner,
)
from repro.core.rand_lines import (
    MoveSmallerLineLearner,
    RandomizedLineLearner,
    UnbiasedCoinLineLearner,
)
from repro.core.simulator import run_online, run_trials
from repro.experiments.bands import band_caption, traced_population
from repro.experiments.charts import cost_trajectory_chart
from repro.experiments.metrics import mean
from repro.telemetry.trace import TraceSample, regress_phases_against_harmonic
from repro.experiments.runner import (
    ExperimentResult,
    ExperimentScale,
    scale_pick,
    seeded_rng,
)
from repro.experiments.tables import ResultTable
from repro.graphs.generators import random_clique_merge_sequence, random_line_sequence


def _safe_ratio(cost: float, denominator: float) -> float:
    """``cost / denominator`` treating a zero optimum as ratio 1 (0-cost runs)."""
    if denominator <= 0:
        return 1.0 if cost == 0 else float("inf")
    return cost / denominator


#: Traced runs per workload group: enough seeds for variance bands in one
#: invocation (the run store needs >= 3 for a band, and a default bench run
#: must archive >= 5 so `runs report` has a real population to summarize).
TRACE_SEEDS_PER_GROUP = (3, 5, 6)


def _traced_samples(
    scale: ExperimentScale,
    seed: int,
    salt: str,
    factory: Callable,
    instance: "OnlineMinLAInstance",
    size: int,
) -> List[TraceSample]:
    """Streamed stride-1 traces of ``factory`` on ``instance``, one per trace seed."""
    num_seeds = scale_pick(scale, *TRACE_SEEDS_PER_GROUP)
    return traced_population(
        factory, instance, f"n={size}", num_seeds, seed, salt, size
    )


def _band_note(samples: List[TraceSample], size: int) -> str:
    """The shaded variance band + harmonic-slope bands caption of one group."""
    return (
        f"Variance band, n={size} ({len(samples)} traced seeds): "
        f"{band_caption(samples, f'band|n={size}')}"
    )


# ----------------------------------------------------------------------
# E1 — Theorem 1: Det is (2n − 2)-competitive on cliques and lines
# ----------------------------------------------------------------------

#: Largest instance size for which E1 runs ``Det`` with the exact
#: closest-MinLA search at *every* step (``max_exact_blocks`` raised to the
#: node count).  Profiled on the subset DP of :mod:`repro.minla.closest`:
#: one fully exact run costs ~0.05 s at n=14, ~0.25 s at n=16, and
#: quadruples with every two extra nodes (~1.2 s at n=18, ~5.7 s at n=20),
#: which would make the full-scale suite unrunnable.  Above the threshold
#: the contestant keeps the default ``auto`` strategy (exact once the
#: component count drops to the default block limit, insertion/greedy
#: before that) — still distinct from the pure-greedy ablation column.
E1_EXACT_NODE_LIMIT = 16


def _e1_det_learner(size: int) -> DeterministicClosestLearner:
    """E1's primary contestant, fully exact up to :data:`E1_EXACT_NODE_LIMIT`."""
    if size <= E1_EXACT_NODE_LIMIT:
        return DeterministicClosestLearner(
            max_exact_blocks=max(DEFAULT_MAX_EXACT_BLOCKS, size)
        )
    return DeterministicClosestLearner()


def run_e1_det_upper_bound(
    scale: ExperimentScale = ExperimentScale.BENCH, seed: int = 0
) -> ExperimentResult:
    """Measure ``Det``'s competitive ratio on random clique and line workloads."""
    sizes: Sequence[int] = scale_pick(scale, (6, 8), (8, 10, 12), (8, 10, 12, 14, 18))
    instances_per_size: int = scale_pick(scale, 2, 3, 5)

    table = ResultTable(
        title="E1 — Det vs OPT (random reveal orders, random initial permutation)",
        columns=[
            "kind",
            "n",
            "instances",
            "mean cost",
            "mean ratio (vs OPT ub)",
            "max ratio (vs OPT lb)",
            "greedy-variant mean ratio",
            "bound 2n-2",
        ],
    )
    worst_ratio = 0.0
    for kind_name in ("cliques", "lines"):
        for size in sizes:
            exact_ratios_ub: List[float] = []
            exact_ratios_lb: List[float] = []
            greedy_ratios: List[float] = []
            costs: List[float] = []
            for index in range(instances_per_size):
                rng = seeded_rng(seed, "e1", kind_name, size, index)
                if kind_name == "cliques":
                    sequence = random_clique_merge_sequence(size, rng)
                else:
                    sequence = random_line_sequence(size, rng)
                instance = OnlineMinLAInstance.with_random_start(sequence, rng)
                opt = offline_optimum_bounds(instance)
                exact_result = run_online(_e1_det_learner(size), instance)
                greedy_result = run_online(GreedyClosestLearner(), instance)
                costs.append(exact_result.total_cost)
                exact_ratios_ub.append(_safe_ratio(exact_result.total_cost, opt.upper))
                exact_ratios_lb.append(_safe_ratio(exact_result.total_cost, opt.lower))
                greedy_ratios.append(_safe_ratio(greedy_result.total_cost, opt.upper))
            worst_ratio = max(worst_ratio, max(exact_ratios_lb))
            table.add_row(
                kind_name,
                size,
                instances_per_size,
                mean(costs),
                mean(exact_ratios_ub),
                max(exact_ratios_lb),
                mean(greedy_ratios),
                det_competitive_bound(size),
            )
    return ExperimentResult(
        experiment_id="E1",
        title="Det upper bound (Theorem 1)",
        paper_claim="Det is (2n-2)-competitive when the revealed graphs are "
        "collections of cliques or collections of lines.",
        tables=[table],
        findings={"worst observed ratio": worst_ratio},
        notes=[
            "Ratios use the certified OPT bracket of repro.core.opt; the greedy "
            "column is the ablation replacing the exact closest-MinLA search by "
            "the greedy ordering heuristic.",
            f"Exact-method gate: up to n = {E1_EXACT_NODE_LIMIT} the primary "
            "contestant solves the closest-MinLA subproblem exactly at every "
            "step (subset DP over all components); above the threshold it "
            "keeps the default auto strategy, which is exact only once few "
            "enough components remain (the all-steps-exact DP costs ~0.25 s "
            "per run at n=16 and quadruples with every two extra nodes, which "
            "would make the full-scale suite unrunnable).",
        ],
    )


# ----------------------------------------------------------------------
# E2 — Theorem 2: Rand on cliques is 4 ln n competitive
# ----------------------------------------------------------------------
def run_e2_rand_cliques(
    scale: ExperimentScale = ExperimentScale.BENCH, seed: int = 0
) -> ExperimentResult:
    """Measure ``Rand``'s expected competitive ratio on random clique merges."""
    sizes: Sequence[int] = scale_pick(scale, (8, 16), (16, 32, 64), (16, 32, 64, 128))
    instances_per_size: int = scale_pick(scale, 1, 2, 3)
    trials: int = scale_pick(scale, 5, 15, 40)

    algorithms: Dict[str, Callable[[], RandomizedCliqueLearner]] = {
        "rand (paper)": RandomizedCliqueLearner,
        "unbiased coin": UnbiasedCoinCliqueLearner,
        "move smaller": MoveSmallerCliqueLearner,
    }
    table = ResultTable(
        title="E2 — Rand on cliques vs the 4·H_n bound",
        columns=[
            "n",
            "algorithm",
            "trials",
            "mean cost",
            "ratio vs OPT ub",
            "ratio vs OPT lb",
            "bound 4·H_n",
        ],
    )
    worst_paper_ratio = 0.0
    trajectory_notes: List[str] = []
    trace_samples: List[TraceSample] = []
    for size in sizes:
        for instance_index in range(instances_per_size):
            rng = seeded_rng(seed, "e2", size, instance_index)
            sequence = random_clique_merge_sequence(size, rng)
            instance = OnlineMinLAInstance.with_random_start(sequence, rng)
            opt = offline_optimum_bounds(instance)
            if instance_index == 0:
                samples = _traced_samples(
                    scale, seed, "e2-trace", RandomizedCliqueLearner, instance, size
                )
                trace_samples.extend(samples)
                trajectory_notes.append(
                    f"Cost trajectory of rand (paper), n={size}, streamed trace "
                    f"(no snapshots): {cost_trajectory_chart(samples[0].trace)} — "
                    f"{regress_phases_against_harmonic(samples[0].trace).summary()}"
                )
                if len(samples) >= 3:
                    trajectory_notes.append(_band_note(samples, size))
            for label, factory in algorithms.items():
                results = run_trials(
                    factory, instance, num_trials=trials, seed=seed + instance_index
                )
                mean_cost = mean([result.total_cost for result in results])
                ratio_ub = _safe_ratio(mean_cost, opt.upper)
                ratio_lb = _safe_ratio(mean_cost, opt.lower)
                if label == "rand (paper)":
                    worst_paper_ratio = max(worst_paper_ratio, ratio_ub)
                table.add_row(
                    size,
                    label,
                    trials,
                    mean_cost,
                    ratio_ub,
                    ratio_lb,
                    rand_cliques_ratio_bound(size),
                )
    return ExperimentResult(
        experiment_id="E2",
        title="Rand on cliques (Theorem 2 / Theorem 6)",
        paper_claim="Rand is 4 ln n-competitive (expected cost at most "
        "4 H_n · |L_pi0 \\ L_piOPT|) when all revealed graphs are collections "
        "of cliques.",
        tables=[table],
        findings={"worst mean ratio of paper algorithm (vs OPT ub)": worst_paper_ratio},
        notes=[
            "The unbiased-coin and move-smaller rows are ablations of the biased "
            "coin of Figure 1; the paper's guarantee only applies to the first row.",
            *trajectory_notes,
        ],
        traces=tuple(trace_samples),
    )


# ----------------------------------------------------------------------
# E3 — Theorem 8: Rand on lines is 8 ln n competitive
# ----------------------------------------------------------------------
def run_e3_rand_lines(
    scale: ExperimentScale = ExperimentScale.BENCH, seed: int = 0
) -> ExperimentResult:
    """Measure ``Rand``'s expected ratio and its moving/rearranging split on lines."""
    sizes: Sequence[int] = scale_pick(scale, (8, 16), (16, 32, 64), (16, 32, 64, 128))
    instances_per_size: int = scale_pick(scale, 1, 2, 3)
    trials: int = scale_pick(scale, 5, 15, 40)

    algorithms: Dict[str, Callable[[], RandomizedLineLearner]] = {
        "rand (paper)": RandomizedLineLearner,
        "unbiased coin": UnbiasedCoinLineLearner,
        "move smaller": MoveSmallerLineLearner,
    }
    table = ResultTable(
        title="E3 — Rand on lines vs the 8·H_n bound (moving + rearranging split)",
        columns=[
            "n",
            "algorithm",
            "trials",
            "mean cost",
            "mean moving",
            "mean rearranging",
            "ratio vs OPT",
            "bound 8·H_n",
        ],
    )
    worst_paper_ratio = 0.0
    trajectory_notes: List[str] = []
    trace_samples: List[TraceSample] = []
    for size in sizes:
        for instance_index in range(instances_per_size):
            rng = seeded_rng(seed, "e3", size, instance_index)
            sequence = random_line_sequence(size, rng)
            instance = OnlineMinLAInstance.with_random_start(sequence, rng)
            opt = offline_optimum_bounds(instance)
            if instance_index == 0:
                samples = _traced_samples(
                    scale, seed, "e3-trace", RandomizedLineLearner, instance, size
                )
                trace_samples.extend(samples)
                trajectory_notes.append(
                    f"Cost trajectory of rand (paper), n={size}, streamed trace "
                    f"(no snapshots): {cost_trajectory_chart(samples[0].trace)} — "
                    f"{regress_phases_against_harmonic(samples[0].trace).summary()}"
                )
                if len(samples) >= 3:
                    trajectory_notes.append(_band_note(samples, size))
            for label, factory in algorithms.items():
                results = run_trials(
                    factory, instance, num_trials=trials, seed=seed + instance_index
                )
                mean_cost = mean([result.total_cost for result in results])
                mean_moving = mean(
                    [result.ledger.total_moving_cost for result in results]
                )
                mean_rearranging = mean(
                    [result.ledger.total_rearranging_cost for result in results]
                )
                ratio = _safe_ratio(mean_cost, opt.upper)
                if label == "rand (paper)":
                    worst_paper_ratio = max(worst_paper_ratio, ratio)
                table.add_row(
                    size,
                    label,
                    trials,
                    mean_cost,
                    mean_moving,
                    mean_rearranging,
                    ratio,
                    rand_lines_ratio_bound(size),
                )
    return ExperimentResult(
        experiment_id="E3",
        title="Rand on lines (Theorem 8 / Theorem 14)",
        paper_claim="Rand is 8 ln n-competitive for collections of lines; the "
        "cost splits into a moving part and a rearranging part, each bounded by "
        "4 H_n · |L_pi0 \\ L_piOPT|.",
        tables=[table],
        findings={"worst mean ratio of paper algorithm": worst_paper_ratio},
        notes=[
            "For line instances the OPT bracket is tight (lower == upper), so the "
            "reported ratio is measured against the exact offline optimum.",
            *trajectory_notes,
        ],
        traces=tuple(trace_samples),
    )


# ----------------------------------------------------------------------
# E4 — Theorem 15: the binary-tree distribution forces Ω(log n)
# ----------------------------------------------------------------------
def run_e4_tree_lower_bound(
    scale: ExperimentScale = ExperimentScale.BENCH, seed: int = 0
) -> ExperimentResult:
    """Measure how the ratio grows with ``log n`` on the Theorem 15 distribution."""
    sizes: Sequence[int] = scale_pick(scale, (8, 32), (16, 32, 64), (16, 32, 64, 128))
    draws_per_size: int = scale_pick(scale, 2, 3, 5)
    trials: int = scale_pick(scale, 4, 8, 20)

    table = ResultTable(
        title="E4 — Rand on the Theorem 15 binary-tree distribution",
        columns=[
            "n",
            "draws",
            "mean cost (Rand)",
            "mean OPT",
            "mean ratio",
            "ratio / log2(n)",
            "paper OPT bound n^2",
            "paper online bound n^2·log2(n)/16",
        ],
    )
    ratios_by_size: Dict[int, float] = {}
    for size in sizes:
        draw_ratios: List[float] = []
        draw_costs: List[float] = []
        draw_opts: List[float] = []
        for draw in range(draws_per_size):
            rng = seeded_rng(seed, "e4", size, draw)
            instance, _ = tree_adversary_instance(size, rng)
            opt = offline_optimum_bounds(instance)
            results = run_trials(
                RandomizedLineLearner, instance, num_trials=trials, seed=seed + draw
            )
            mean_cost = mean([result.total_cost for result in results])
            draw_costs.append(mean_cost)
            draw_opts.append(opt.upper)
            draw_ratios.append(_safe_ratio(mean_cost, opt.upper))
        ratio = mean(draw_ratios)
        ratios_by_size[size] = ratio
        table.add_row(
            size,
            draws_per_size,
            mean(draw_costs),
            mean(draw_opts),
            ratio,
            ratio / math.log2(size),
            offline_cost_upper_bound(size),
            online_cost_lower_bound(size),
        )
    smallest, largest = min(sizes), max(sizes)
    growth = ratios_by_size[largest] / max(ratios_by_size[smallest], 1e-9)
    return ExperimentResult(
        experiment_id="E4",
        title="Randomized lower bound distribution (Theorem 15)",
        paper_claim="On the binary-tree request distribution every online "
        "algorithm pays Omega(n^2 log n) in expectation while OPT pays at most "
        "n^2, so no randomized algorithm is better than (log2 n)/16-competitive.",
        tables=[table],
        findings={
            "ratio growth (largest n / smallest n)": growth,
            "lower bound (log2 n)/16 at largest n": expected_ratio_lower_bound(largest),
        },
        notes=[
            "The measured ratio grows with n roughly like log n: the normalized "
            "column 'ratio / log2(n)' stays within a narrow band, matching the "
            "Theta(log n) competitiveness established by Theorems 8 and 15."
        ],
    )


# ----------------------------------------------------------------------
# E5 — Theorem 16: the adaptive line adversary forces Ω(n) on Det
# ----------------------------------------------------------------------
def run_e5_det_lower_bound(
    scale: ExperimentScale = ExperimentScale.BENCH, seed: int = 0
) -> ExperimentResult:
    """Measure the linear blow-up of ``Det`` against the Theorem 16 adversary."""
    sizes: Sequence[int] = scale_pick(scale, (9, 15), (11, 21, 41), (21, 41, 81, 121))
    rand_trials: int = scale_pick(scale, 2, 5, 10)

    table = ResultTable(
        title="E5 — the adaptive middle-node adversary (odd n)",
        columns=[
            "n",
            "Det cost",
            "OPT (exact)",
            "Det ratio",
            "Det ratio / n",
            "Rand mean cost",
            "Rand mean ratio",
            "bound 2n-2",
        ],
    )
    det_ratios: Dict[int, float] = {}
    for size in sizes:
        det_result = run_line_adversary(DeterministicClosestLearner(), size)
        det_ratio = det_result.ratio_lower_estimate
        det_ratios[size] = det_ratio

        rand_costs: List[float] = []
        rand_ratios: List[float] = []
        for trial in range(rand_trials):
            rng = seeded_rng(seed, "e5", size, trial)
            rand_result = run_line_adversary(RandomizedLineLearner(), size, rng=rng)
            rand_costs.append(rand_result.total_cost)
            rand_ratios.append(rand_result.ratio_lower_estimate)
        table.add_row(
            size,
            det_result.total_cost,
            det_result.opt_bounds.upper,
            det_ratio,
            det_ratio / size,
            mean(rand_costs),
            mean(rand_ratios),
            det_competitive_bound(size),
        )
    smallest, largest = min(sizes), max(sizes)
    growth = det_ratios[largest] / max(det_ratios[smallest], 1e-9)
    expected_growth = largest / smallest
    return ExperimentResult(
        experiment_id="E5",
        title="Deterministic lower bound (Theorem 16)",
        paper_claim="Any deterministic algorithm that always moves to a feasible "
        "permutation closest to pi_0 is Omega(n)-competitive: the adaptive line "
        "adversary forces cost Omega(n^2) while OPT pays O(n).",
        tables=[table],
        findings={
            "Det ratio growth (largest/smallest n)": growth,
            "n growth (largest/smallest n)": expected_growth,
        },
        notes=[
            "Det's ratio scales linearly with n (the 'ratio / n' column is roughly "
            "constant) while the randomized algorithm's ratio stays logarithmic on "
            "the very same adversary, matching Theorems 16 and 8."
        ],
    )
