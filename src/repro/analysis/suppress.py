"""Per-line suppression comments and the meta-rules that police them.

A finding is silenced by an inline comment on the offending line::

    results = {}  # repro: allow[det003] — insertion-ordered dict, keys added deterministically

or, when the line is too long, by a standalone comment directly above it::

    # repro: allow[thr001] — single-writer attribute, readers join() first
    self._sentinel_seen = True

Several rules can share one comment (``allow[det001,det003]``).  The reason
string after the dash is **mandatory**: a suppression without one is itself
a finding (:data:`RULE_MISSING_REASON`), because an unexplained waiver is
indistinguishable from a stale copy-paste.  A suppression that no longer
matches any finding on its target lines is also a finding
(:data:`RULE_STALE`) so waivers cannot outlive the code they excused.
"""

from __future__ import annotations

import re
import tokenize
from dataclasses import dataclass
from io import StringIO
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding

#: Meta-rule: a suppression comment with an empty reason string.
RULE_MISSING_REASON = "SUP001"
#: Meta-rule: a suppression whose rule no longer fires on its target line.
RULE_STALE = "SUP002"

_SUPPRESSION_RE = re.compile(
    r"#\s*repro:\s*allow\[(?P<rules>[^\]]*)\]\s*(?:[-—–:]+\s*(?P<reason>.*))?$"
)


@dataclass(frozen=True)
class Suppression:
    """One parsed ``# repro: allow[...]`` comment."""

    path: str
    line: int
    """Line the comment itself sits on."""
    rules: FrozenSet[str]
    """Upper-cased rule ids the comment waives."""
    reason: str
    """The justification after the dash (may be empty — then SUP001 fires)."""
    standalone: bool
    """True when the comment is the only token on its line."""

    def target_lines(self) -> Tuple[int, ...]:
        """Lines this suppression applies to.

        An inline comment covers its own line; a standalone comment covers
        its own line *and* the next one (the statement it annotates).
        """
        if self.standalone:
            return (self.line, self.line + 1)
        return (self.line,)

    def covers(self, rule: str) -> bool:
        """Whether this comment waives findings of ``rule``."""
        return rule.upper() in self.rules


def parse_suppressions(path: str, source: str) -> List[Suppression]:
    """Extract every suppression comment of one module.

    Comments are found with :mod:`tokenize` (not a line regex) so ``#``
    characters inside string literals can never masquerade as waivers.
    """
    suppressions: List[Suppression] = []
    try:
        tokens = list(tokenize.generate_tokens(StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return suppressions
    for token in tokens:
        if token.type != tokenize.COMMENT:
            continue
        match = _SUPPRESSION_RE.search(token.string)
        if match is None:
            continue
        rules = frozenset(
            part.strip().upper()
            for part in match.group("rules").split(",")
            if part.strip()
        )
        if not rules:
            continue
        reason = (match.group("reason") or "").strip()
        standalone = token.line[: token.start[1]].strip() == ""
        suppressions.append(
            Suppression(
                path=path,
                line=token.start[0],
                rules=rules,
                reason=reason,
                standalone=standalone,
            )
        )
    return suppressions


def apply_suppressions(
    findings: Sequence[Finding],
    suppressions: Sequence[Suppression],
    executed_rules: Optional[Iterable[str]] = None,
) -> Tuple[List[Finding], List[Finding], List[Finding]]:
    """Split raw findings into kept vs. suppressed, and emit meta-findings.

    Returns ``(active, suppressed, meta)`` where ``meta`` holds the SUP001
    findings for reason-less comments and the SUP002 findings for stale
    ones.  Meta-findings are not themselves suppressible — a waiver that
    needs a waiver should simply be deleted.

    ``executed_rules`` (when given) limits staleness detection to rules
    that actually ran: under ``--rules DET001`` a DET003 waiver cannot be
    judged stale, because nothing looked for DET003 findings.
    """
    executed = (
        None
        if executed_rules is None
        else {rule.upper() for rule in executed_rules}
    )
    by_target: Dict[Tuple[str, int], List[Suppression]] = {}
    for suppression in suppressions:
        for line in suppression.target_lines():
            by_target.setdefault((suppression.path, line), []).append(suppression)

    active: List[Finding] = []
    suppressed: List[Finding] = []
    used: Dict[Tuple[str, int, FrozenSet[str]], set] = {}
    for finding in findings:
        matches = [
            suppression
            for suppression in by_target.get((finding.path, finding.line), [])
            if suppression.covers(finding.rule)
        ]
        if matches:
            suppressed.append(finding)
            for suppression in matches:
                key = (suppression.path, suppression.line, suppression.rules)
                used.setdefault(key, set()).add(finding.rule.upper())
        else:
            active.append(finding)

    meta: List[Finding] = []
    for suppression in suppressions:
        if not suppression.reason:
            meta.append(
                Finding(
                    path=suppression.path,
                    line=suppression.line,
                    column=0,
                    rule=RULE_MISSING_REASON,
                    message=(
                        "suppression comment has no reason string; write "
                        "'# repro: allow[rule] — why this is safe'"
                    ),
                )
            )
        key = (suppression.path, suppression.line, suppression.rules)
        fired = used.get(key, set())
        stale_candidates = suppression.rules - fired
        if executed is not None:
            stale_candidates &= executed
        for rule in sorted(stale_candidates):
            meta.append(
                Finding(
                    path=suppression.path,
                    line=suppression.line,
                    column=0,
                    rule=RULE_STALE,
                    message=(
                        f"stale suppression: rule {rule} no longer fires on "
                        "this line; delete the allow comment"
                    ),
                )
            )
    return active, suppressed, meta


def iter_rule_ids(suppressions: Iterable[Suppression]) -> FrozenSet[str]:
    """The union of rule ids referenced by a collection of suppressions."""
    rules: set = set()
    for suppression in suppressions:
        rules |= suppression.rules
    return frozenset(rules)
