"""API001: exported public functions carry complete type annotations.

Every name a package ``__init__`` re-exports is public API; a public
function whose parameters or return type are unannotated pushes its
contract into the docstring (or the reader's imagination).  This rule
resolves each exported name through the re-export chain back to its
defining module and checks the definition site, so the finding lands on
the line a fix belongs to.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Tuple

from repro.analysis.findings import Finding
from repro.analysis.model import Project, SourceModule
from repro.analysis.rulebase import Rule

_FunctionDef = (ast.FunctionDef, ast.AsyncFunctionDef)


def _exported_names(module: SourceModule) -> List[str]:
    """The public surface of one ``__init__``: ``__all__`` or import names."""
    for statement in module.tree.body:
        if (
            isinstance(statement, ast.Assign)
            and any(
                isinstance(target, ast.Name) and target.id == "__all__"
                for target in statement.targets
            )
            and isinstance(statement.value, (ast.List, ast.Tuple))
        ):
            return [
                element.value
                for element in statement.value.elts
                if isinstance(element, ast.Constant)
                and isinstance(element.value, str)
            ]
    names: List[str] = []
    for statement in module.tree.body:
        if isinstance(statement, ast.ImportFrom):
            for alias in statement.names:
                bound = alias.asname or alias.name
                if not bound.startswith("_"):
                    names.append(bound)
    return names


def _import_map(module: SourceModule) -> Dict[str, Tuple[str, str]]:
    """``bound name -> (source module, original name)`` for one module."""
    mapping: Dict[str, Tuple[str, str]] = {}
    for statement in module.tree.body:
        if isinstance(statement, ast.ImportFrom) and statement.module:
            source = statement.module
            if statement.level:
                base = module.module.split(".")
                if not module.is_package_init:
                    base = base[:-1]
                base = base[: len(base) - (statement.level - 1)]
                source = ".".join(base + [statement.module])
            for alias in statement.names:
                mapping[alias.asname or alias.name] = (source, alias.name)
    return mapping


def _missing_annotations(function: ast.AST) -> List[str]:
    """Parameter/return slots of ``function`` lacking annotations."""
    missing: List[str] = []
    arguments = function.args
    positional = list(arguments.posonlyargs) + list(arguments.args)
    for index, argument in enumerate(positional):
        if index == 0 and argument.arg in {"self", "cls"}:
            continue
        if argument.annotation is None:
            missing.append(argument.arg)
    for argument in arguments.kwonlyargs:
        if argument.annotation is None:
            missing.append(argument.arg)
    if arguments.vararg is not None and arguments.vararg.annotation is None:
        missing.append("*" + arguments.vararg.arg)
    if arguments.kwarg is not None and arguments.kwarg.annotation is None:
        missing.append("**" + arguments.kwarg.arg)
    if function.returns is None:
        missing.append("return")
    return missing


class PublicAnnotationsRule(Rule):
    """API001: exported functions must be fully annotated."""

    rule_id = "API001"
    title = "exported public function missing type annotations"
    rationale = (
        "names re-exported by a package __init__ are the library's "
        "contract; unannotated parameters or returns hide that contract "
        "from type checkers and readers"
    )

    def check_project(self, project: Project) -> Iterator[Finding]:
        seen: set = set()
        for module in project.ordered():
            if not module.is_package_init:
                continue
            for name in _exported_names(module):
                resolved = self._resolve(project, module, name, depth=0)
                if resolved is None:
                    continue
                defining, function = resolved
                key = (defining.module, function.name, function.lineno)
                if key in seen:
                    continue
                seen.add(key)
                missing = _missing_annotations(function)
                if missing:
                    yield self.finding(
                        defining,
                        function,
                        f"public function {defining.module}.{function.name} "
                        f"(exported by {module.rel_path}) is missing "
                        f"annotations for: {', '.join(missing)}",
                    )

    def _resolve(
        self, project: Project, module: SourceModule, name: str, depth: int
    ) -> Optional[Tuple[SourceModule, ast.AST]]:
        """Follow re-exports of ``name`` back to a function definition."""
        if depth > 8:
            return None
        for statement in module.tree.body:
            if isinstance(statement, _FunctionDef) and statement.name == name:
                return module, statement
            if isinstance(statement, ast.ClassDef) and statement.name == name:
                return None  # classes are out of API001's scope
            if isinstance(statement, (ast.Assign, ast.AnnAssign)):
                targets = (
                    statement.targets
                    if isinstance(statement, ast.Assign)
                    else [statement.target]
                )
                if any(
                    isinstance(target, ast.Name) and target.id == name
                    for target in targets
                ):
                    return None  # constants are out of API001's scope
        source = _import_map(module).get(name)
        if source is None:
            return None
        source_module = project.get(source[0])
        if source_module is None:
            return None
        return self._resolve(project, source_module, source[1], depth + 1)
