"""Determinism rules: seeded randomness, wall-clock hygiene, ordered iteration.

These three rules mechanize the conventions behind every bit-identity
claim in the repository (E14 ``max deviation = 0``, ``--jobs N`` equal to
sequential, batch-invariant reveal serving):

* **DET001** — randomness must flow from an explicitly seeded generator
  that the caller threads through.  Module-level ``random.*`` calls and
  ``random.Random()`` without a seed draw from ambient, per-process state.
* **DET002** — wall-clock readings are observability, never semantics: a
  value derived from ``time.time()``/``perf_counter()``/``datetime.now()``
  must not flow into cost/ledger/trace arithmetic.  Timing-named sinks
  (``*_seconds``, ``wall``, ``latency`` ...) are the sanctioned outlets.
* **DET003** — in modules covered by
  :data:`~repro.analysis.manifest.DETERMINISTIC_MODULES`, iteration over
  ``set``/``frozenset`` expressions or raw dict views must go through
  ``sorted(...)`` (or feed an order-insensitive reduction), because any
  ordering that leaks into costs or output must be reproducible across
  hash seeds and insertion histories.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.model import SourceModule
from repro.analysis.rulebase import (
    Rule,
    call_name,
    dotted_name,
    scope_statements,
    scopes,
)

# ----------------------------------------------------------------------
# DET001 — unseeded randomness
# ----------------------------------------------------------------------

#: ``random`` module functions that draw from the ambient global generator.
_GLOBAL_RANDOM_FUNCTIONS = frozenset(
    {
        "betavariate",
        "choice",
        "choices",
        "expovariate",
        "gammavariate",
        "gauss",
        "getrandbits",
        "lognormvariate",
        "normalvariate",
        "paretovariate",
        "randbytes",
        "randint",
        "random",
        "randrange",
        "sample",
        "seed",
        "shuffle",
        "triangular",
        "uniform",
        "vonmisesvariate",
        "weibullvariate",
    }
)

#: ``numpy.random`` entry points that are fine *when given a seed*.
_SEEDABLE_NUMPY_FACTORIES = frozenset(
    {"default_rng", "Generator", "RandomState", "SeedSequence"}
)


class UnseededRandomnessRule(Rule):
    """DET001: randomness must come from an explicitly seeded generator."""

    rule_id = "DET001"
    title = "unseeded randomness"
    rationale = (
        "module-level random.* calls and random.Random() without a seed "
        "draw from ambient per-process state, breaking run reproducibility"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            if name == "random.Random":
                if not node.args and not node.keywords:
                    yield self.finding(
                        module,
                        node,
                        "random.Random() without a seed argument; pass an "
                        "explicit seed so runs are reproducible",
                    )
                continue
            parts = name.split(".")
            if (
                len(parts) == 2
                and parts[0] == "random"
                and parts[1] in _GLOBAL_RANDOM_FUNCTIONS
            ):
                yield self.finding(
                    module,
                    node,
                    f"module-level {name}() uses the ambient global "
                    "generator; thread a seeded random.Random through "
                    "instead",
                )
                continue
            if len(parts) >= 3 and parts[0] in {"np", "numpy"} and parts[1] == "random":
                attr = parts[2]
                if attr in _SEEDABLE_NUMPY_FACTORIES and (node.args or node.keywords):
                    continue
                yield self.finding(
                    module,
                    node,
                    f"module-level {name}() draws from numpy's ambient "
                    "state; use np.random.default_rng(seed) and pass the "
                    "generator through",
                )


# ----------------------------------------------------------------------
# DET002 — wall-clock taint into cost accounting
# ----------------------------------------------------------------------

#: Dotted callee names that read a wall clock.
_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
        "datetime.now",
        "datetime.utcnow",
        "datetime.datetime.now",
        "datetime.datetime.utcnow",
        "date.today",
        "datetime.date.today",
    }
)

#: Bare names that are clock reads when imported from :mod:`time`.
_CLOCK_BARE_NAMES = frozenset(
    {
        "monotonic",
        "monotonic_ns",
        "perf_counter",
        "perf_counter_ns",
        "process_time",
        "process_time_ns",
        "time_ns",
    }
)

#: Substrings of a dotted callee path that mark it as cost accounting.
_SINK_TOKENS = ("ledger", "charge", "cost", "trace", "recorder")

#: Substrings of a keyword/target name that mark a *timing* destination —
#: the sanctioned place for wall-clock values even inside cost records.
_TIMING_NAME_TOKENS = (
    "seconds",
    "second",
    "latency",
    "elapsed",
    "wall",
    "duration",
    "timestamp",
    "created",
    "time",
    "_ms",
    "deadline",
)


def _is_timing_name(name: Optional[str]) -> bool:
    if not name:
        return False
    lowered = name.lower()
    return any(token in lowered for token in _TIMING_NAME_TOKENS)


def _is_sink_callee(name: str) -> bool:
    lowered = name.lower()
    return any(token in lowered for token in _SINK_TOKENS)


class WallClockTaintRule(Rule):
    """DET002: wall-clock readings must never reach cost accounting."""

    rule_id = "DET002"
    title = "wall-clock value flows into cost accounting"
    rationale = (
        "costs must be a pure function of the request sequence and seeds; "
        "a clock reading that feeds a ledger/trace/cost value makes totals "
        "vary run to run"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        clock_imports = self._clock_imports(module.tree)
        for body in scopes(module.tree):
            yield from self._check_scope(module, body, clock_imports)

    @staticmethod
    def _clock_imports(tree: ast.Module) -> Set[str]:
        """Bare names bound to clock functions by ``from time import ...``."""
        names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _CLOCK_BARE_NAMES or alias.name == "time":
                        names.add(alias.asname or alias.name)
        return names

    def _is_clock_call(self, node: ast.Call, clock_imports: Set[str]) -> bool:
        name = call_name(node)
        if name is None:
            return False
        return name in _CLOCK_CALLS or name in clock_imports

    def _expr_tainted(
        self, node: ast.AST, tainted: Set[str], clock_imports: Set[str]
    ) -> bool:
        for child in ast.walk(node):
            if isinstance(child, ast.Call) and self._is_clock_call(
                child, clock_imports
            ):
                return True
            if isinstance(child, ast.Name) and child.id in tainted:
                return True
            if isinstance(child, ast.Attribute):
                name = dotted_name(child)
                if name is not None and name in tainted:
                    return True
        return False

    def _check_scope(
        self, module: SourceModule, body: List[ast.stmt], clock_imports: Set[str]
    ) -> Iterator[Finding]:
        tainted: Set[str] = set()
        for statement in scope_statements(body):
            yield from self._check_sinks(module, statement, tainted, clock_imports)
            self._propagate(statement, tainted, clock_imports)

    def _propagate(
        self, statement: ast.stmt, tainted: Set[str], clock_imports: Set[str]
    ) -> None:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(statement, ast.Assign):
            targets, value = statement.targets, statement.value
        elif isinstance(statement, ast.AnnAssign) and statement.value is not None:
            targets, value = [statement.target], statement.value
        elif isinstance(statement, ast.AugAssign):
            targets, value = [statement.target], statement.value
        if value is None:
            return
        if not self._expr_tainted(value, tainted, clock_imports):
            return
        for target in targets:
            for node in ast.walk(target):
                if isinstance(node, ast.Name):
                    tainted.add(node.id)
                elif isinstance(node, ast.Attribute):
                    name = dotted_name(node)
                    if name is not None:
                        tainted.add(name)

    def _check_sinks(
        self,
        module: SourceModule,
        statement: ast.stmt,
        tainted: Set[str],
        clock_imports: Set[str],
    ) -> Iterator[Finding]:
        # Sink 1: tainted value assigned to a cost-named target.
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(statement, ast.Assign):
            targets, value = statement.targets, statement.value
        elif isinstance(statement, ast.AnnAssign):
            targets, value = [statement.target], statement.value
        elif isinstance(statement, ast.AugAssign):
            targets, value = [statement.target], statement.value
        if value is not None and self._expr_tainted(value, tainted, clock_imports):
            for target in targets:
                name = dotted_name(target) or ""
                short = name.rsplit(".", 1)[-1]
                if _is_sink_callee(short) and not _is_timing_name(short):
                    yield self.finding(
                        module,
                        statement,
                        f"wall-clock-derived value assigned to cost-"
                        f"accounting target {name!r}; costs must be pure "
                        "functions of requests and seeds",
                    )
        # Sink 2: tainted value passed into a cost/ledger/trace call.
        for node in ast.walk(statement):
            if not isinstance(node, ast.Call):
                continue
            callee = call_name(node)
            if callee is None or not _is_sink_callee(callee):
                continue
            for arg in node.args:
                if self._expr_tainted(arg, tainted, clock_imports):
                    yield self.finding(
                        module,
                        arg,
                        f"wall-clock-derived value passed positionally to "
                        f"{callee}(); route timings through a timing-named "
                        "keyword or keep them out of cost accounting",
                    )
            for keyword in node.keywords:
                if keyword.arg is not None and _is_timing_name(keyword.arg):
                    continue
                if self._expr_tainted(keyword.value, tainted, clock_imports):
                    label = keyword.arg or "**kwargs"
                    yield self.finding(
                        module,
                        keyword.value,
                        f"wall-clock-derived value passed as {label!r} to "
                        f"{callee}(); costs must not depend on clock "
                        "readings",
                    )


# ----------------------------------------------------------------------
# DET003 — unordered iteration in deterministic modules
# ----------------------------------------------------------------------

#: Callables whose result does not depend on element order — iterating an
#: unordered collection directly into one of these is harmless.
_ORDER_INSENSITIVE_CONSUMERS = frozenset(
    {"all", "any", "dict", "frozenset", "len", "max", "min", "set", "sorted", "sum"}
)

_DICT_VIEW_METHODS = frozenset({"keys", "values", "items"})
_SET_RETURNING_METHODS = frozenset(
    {"union", "intersection", "difference", "symmetric_difference"}
)
_SET_BINOPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


class UnorderedIterationRule(Rule):
    """DET003: deterministic modules iterate sets/dict views via sorted()."""

    rule_id = "DET003"
    title = "unordered iteration in a deterministic module"
    rationale = (
        "set iteration order depends on the hash seed and insertion "
        "history; any order that leaks into costs or output must go "
        "through sorted(...)"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if not module.is_deterministic:
            return
        exempt = self._order_insensitive_nodes(module.tree)
        for node in ast.walk(module.tree):
            iterables: List[ast.expr] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iterables.append(node.iter)
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                if id(node) in exempt:
                    continue
                iterables.extend(gen.iter for gen in node.generators)
            for iterable in iterables:
                if id(iterable) in exempt:
                    continue
                description = self._unordered(iterable)
                if description is not None:
                    yield self.finding(
                        module,
                        iterable,
                        f"iteration over {description} in a deterministic "
                        "module; wrap it in sorted(...) so the order cannot "
                        "depend on hashing or insertion history",
                    )

    @staticmethod
    def _order_insensitive_nodes(tree: ast.Module) -> Set[int]:
        """Node ids consumed by an order-insensitive reduction.

        ``sum(x for x in s)`` and ``max(d.values())`` are deterministic
        even over unordered inputs, so the comprehension (and the direct
        argument) are exempt from DET003.
        """
        exempt: Set[int] = set()
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None or name.split(".")[-1] not in _ORDER_INSENSITIVE_CONSUMERS:
                continue
            for arg in node.args:
                exempt.add(id(arg))
                if isinstance(arg, (ast.GeneratorExp, ast.ListComp, ast.SetComp)):
                    for gen in arg.generators:
                        exempt.add(id(gen.iter))
        return exempt

    def _unordered(self, node: ast.expr) -> Optional[str]:
        """Describe why ``node`` is an unordered iterable, or ``None``."""
        if isinstance(node, ast.Set):
            return "a set literal"
        if isinstance(node, ast.SetComp):
            return "a set comprehension"
        if isinstance(node, ast.BinOp) and isinstance(node.op, _SET_BINOPS):
            left = self._unordered(node.left)
            right = self._unordered(node.right)
            if left is not None or right is not None:
                return "a set expression"
            return None
        if isinstance(node, ast.Call):
            name = call_name(node)
            if name in {"set", "frozenset"}:
                return f"{name}(...)"
            if isinstance(node.func, ast.Attribute):
                method = node.func.attr
                if method in _DICT_VIEW_METHODS and not node.args:
                    return f"a raw dict view (.{method}())"
                if method in _SET_RETURNING_METHODS:
                    receiver = self._unordered(node.func.value)
                    if receiver is not None:
                        return f"a set method (.{method}())"
        return None
