"""Thread-discipline rules for the serving subsystem.

* **THR001** — every attribute a worker thread writes is part of the
  cross-thread contract, so it must be *declared*: thread subclasses list
  the attributes their ``run()`` path writes in a class-level ``_shared``
  manifest (single-writer attributes the owner publishes and readers
  collect after ``join()``); non-thread classes that declare a ``_shared``
  manifest must write those attributes under the owning ``*lock*`` (or
  hand the data to a ``queue.Queue``, which synchronizes internally).
* **THR002** — queues between producers and workers must be bounded:
  an unbounded ``queue.Queue()`` or ``multiprocessing.Queue()`` (or a list
  popped from the front) turns overload into unbounded memory instead of
  explicit backpressure.  The rule covers the cross-process variants
  because the process backend's request pipes hold pickled payloads — an
  unbounded one grows in *two* address spaces at once.

Both rules apply only inside
:data:`~repro.analysis.manifest.THREADED_MODULES`.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.model import SourceModule
from repro.analysis.rulebase import Rule, call_name, dotted_name

#: Name of the class-level manifest declaring worker-written attributes.
SHARED_MANIFEST = "_shared"


def _self_attribute_writes(node: ast.AST) -> Iterator[Tuple[ast.stmt, str]]:
    """Yield ``(statement, attr)`` for every ``self.attr = ...`` under ``node``."""
    for statement in ast.walk(node):
        targets: List[ast.expr] = []
        if isinstance(statement, ast.Assign):
            targets = statement.targets
        elif isinstance(statement, (ast.AnnAssign, ast.AugAssign)):
            targets = [statement.target]
        else:
            continue
        for target in targets:
            for child in ast.walk(target):
                if (
                    isinstance(child, ast.Attribute)
                    and isinstance(child.value, ast.Name)
                    and child.value.id == "self"
                ):
                    yield statement, child.attr


def _shared_manifest(class_def: ast.ClassDef) -> Optional[Set[str]]:
    """Parse the class-level ``_shared`` manifest, when declared."""
    for statement in class_def.body:
        if not isinstance(statement, (ast.Assign, ast.AnnAssign)):
            continue
        targets = (
            statement.targets
            if isinstance(statement, ast.Assign)
            else [statement.target]
        )
        if not any(
            isinstance(target, ast.Name) and target.id == SHARED_MANIFEST
            for target in targets
        ):
            continue
        value = statement.value
        if isinstance(value, ast.Call) and call_name(value) in {"frozenset", "set"}:
            if len(value.args) == 1:
                value = value.args[0]
        names: Set[str] = set()
        if isinstance(value, (ast.Tuple, ast.List, ast.Set)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    names.add(element.value)
        return names
    return None


def _is_thread_subclass(class_def: ast.ClassDef) -> bool:
    for base in class_def.bases:
        name = dotted_name(base)
        if name is not None and name.split(".")[-1] == "Thread":
            return True
    return False


class LockDisciplineRule(Rule):
    """THR001: worker-written attributes are declared and lock-protected."""

    rule_id = "THR001"
    title = "undisciplined cross-thread attribute access"
    rationale = (
        "attributes crossing a thread boundary must be declared in the "
        "class's _shared manifest and written under the owning lock (or "
        "be a queue.Queue), so the synchronization story is reviewable"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if not module.is_threaded:
            return
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef):
                yield from self._check_class(module, node)

    def _check_class(
        self, module: SourceModule, class_def: ast.ClassDef
    ) -> Iterator[Finding]:
        shared = _shared_manifest(class_def)
        is_thread = _is_thread_subclass(class_def)
        methods = [
            statement
            for statement in class_def.body
            if isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        if is_thread:
            declared = shared or set()
            for method in methods:
                if method.name == "__init__":
                    continue
                for statement, attr in _self_attribute_writes(method):
                    if attr not in declared:
                        yield self.finding(
                            module,
                            statement,
                            f"{class_def.name}.{method.name} writes "
                            f"self.{attr} on the worker thread but "
                            f"{attr!r} is not declared in the class's "
                            f"{SHARED_MANIFEST} manifest",
                        )
        elif shared:
            queue_attrs = self._queue_attributes(class_def)
            for method in methods:
                if method.name == "__init__":
                    continue
                yield from self._check_locked_writes(
                    module, class_def, method, shared, queue_attrs
                )

    @staticmethod
    def _queue_attributes(class_def: ast.ClassDef) -> Set[str]:
        """Attributes initialized to ``queue.Queue`` objects in ``__init__``."""
        attrs: Set[str] = set()
        for method in class_def.body:
            if (
                not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef))
                or method.name != "__init__"
            ):
                continue
            for statement, attr in _self_attribute_writes(method):
                value = getattr(statement, "value", None)
                if value is None:
                    continue
                for call in ast.walk(value):
                    if isinstance(call, ast.Call):
                        name = call_name(call) or ""
                        if name.split(".")[-1] in {
                            "Queue",
                            "LifoQueue",
                            "PriorityQueue",
                            "SimpleQueue",
                        }:
                            attrs.add(attr)
        return attrs

    def _check_locked_writes(
        self,
        module: SourceModule,
        class_def: ast.ClassDef,
        method: ast.AST,
        shared: Set[str],
        queue_attrs: Set[str],
        inside_lock: bool = False,
    ) -> Iterator[Finding]:
        """Recursive walk tracking whether we are under a ``with *lock*``."""
        for statement in getattr(method, "body", []):
            held = inside_lock
            if isinstance(statement, ast.With):
                for item in statement.items:
                    name = dotted_name(item.context_expr) or (
                        dotted_name(item.context_expr.func)
                        if isinstance(item.context_expr, ast.Call)
                        else None
                    )
                    if name is not None and "lock" in name.lower():
                        held = True
            for direct, attr in _self_attribute_writes_shallow(statement):
                if attr in shared and attr not in queue_attrs and not held:
                    yield self.finding(
                        module,
                        direct,
                        f"{class_def.name} writes shared attribute "
                        f"self.{attr} outside the owning lock (declared in "
                        f"{SHARED_MANIFEST}); wrap the write in "
                        "'with self.<lock>:'",
                    )
            for field_name in ("body", "orelse", "finalbody"):
                inner = getattr(statement, field_name, None)
                if inner:
                    yield from self._check_locked_writes(
                        module,
                        class_def,
                        _BodyHolder(inner),
                        shared,
                        queue_attrs,
                        inside_lock=held,
                    )
            for handler in getattr(statement, "handlers", []) or []:
                yield from self._check_locked_writes(
                    module,
                    class_def,
                    _BodyHolder(handler.body),
                    shared,
                    queue_attrs,
                    inside_lock=held,
                )


class _BodyHolder:
    """Adapter giving a plain statement list a ``.body`` attribute."""

    def __init__(self, body: List[ast.stmt]) -> None:
        self.body = body


def _self_attribute_writes_shallow(
    statement: ast.stmt,
) -> Iterator[Tuple[ast.stmt, str]]:
    """Attribute writes of one statement, not descending into sub-blocks."""
    if isinstance(statement, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
        yield from _self_attribute_writes(statement)


class UnboundedQueueRule(Rule):
    """THR002: producer/worker queues in service code must be bounded."""

    rule_id = "THR002"
    title = "unbounded queue in service code"
    rationale = (
        "an unbounded queue turns overload into unbounded memory; bounded "
        "queues make backpressure explicit at the submission point"
    )

    #: Module prefixes whose ``Queue`` factories the rule recognizes
    #: (``mp`` is the conventional ``import multiprocessing as mp`` alias).
    _QUEUE_MODULES = ("queue", "multiprocessing", "mp")

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if not module.is_threaded:
            return
        bounded_factories = {
            f"{prefix}.{short}"
            for prefix in self._QUEUE_MODULES
            for short in ("Queue", "LifoQueue", "PriorityQueue", "JoinableQueue")
        }
        simple_factories = {
            f"{prefix}.SimpleQueue" for prefix in self._QUEUE_MODULES
        }
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            short = (name or "").split(".")[-1]
            if short in {
                "Queue",
                "LifoQueue",
                "PriorityQueue",
                "JoinableQueue",
            } and (name in bounded_factories or name == short):
                maxsize = self._maxsize_argument(node)
                if maxsize is None:
                    yield self.finding(
                        module,
                        node,
                        f"{name}() without a positive maxsize is unbounded; "
                        "pass maxsize=<capacity> so overload becomes "
                        "backpressure, not memory growth",
                    )
            elif name in simple_factories or name == "SimpleQueue":
                yield self.finding(
                    module,
                    node,
                    f"{name or 'SimpleQueue'}() cannot be bounded; use a "
                    "Queue(maxsize=<capacity>) from the same module instead",
                )
            elif (
                isinstance(node.func, ast.Attribute)
                and node.func.attr == "pop"
                and len(node.args) == 1
                and isinstance(node.args[0], ast.Constant)
                and node.args[0].value == 0
            ):
                yield self.finding(
                    module,
                    node,
                    "list.pop(0) suggests a list used as an unbounded FIFO; "
                    "use a bounded queue.Queue (or collections.deque with "
                    "maxlen) instead",
                )

    @staticmethod
    def _maxsize_argument(node: ast.Call) -> Optional[ast.expr]:
        """The queue-capacity argument, unless it is literally unbounded."""
        candidate: Optional[ast.expr] = None
        if node.args:
            candidate = node.args[0]
        for keyword in node.keywords:
            if keyword.arg == "maxsize":
                candidate = keyword.value
        if candidate is None:
            return None
        if isinstance(candidate, ast.Constant) and (
            not isinstance(candidate.value, int) or candidate.value <= 0
        ):
            return None
        return candidate
