"""The ``python -m repro analyze`` command.

Runs the static checker over a source tree (the installed ``repro``
package by default), prints the findings as text or JSON, optionally
ratchets against a baseline snapshot, and exits non-zero when any
unsuppressed (or, with ``--baseline``, any *new*) finding remains — which
is how CI and the tier-1 gate consume it.
"""

from __future__ import annotations

import argparse
import json
from pathlib import Path
from typing import List, Optional

from repro.analysis.baseline import new_findings, read_baseline, write_baseline
from repro.analysis.checker import analyze_paths, rule_catalog, select_rules
from repro.errors import AnalysisError


def default_target() -> Path:
    """The tree analyzed when no paths are given: the ``repro`` package."""
    import repro

    return Path(repro.__file__).resolve().parent


def add_analyze_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the ``analyze`` options to an argparse (sub)parser."""
    parser.add_argument(
        "paths",
        nargs="*",
        type=Path,
        help="files or directories to analyze (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--rules",
        nargs="+",
        metavar="RULE",
        help="run only these rule ids (default: all rules)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        metavar="FILE",
        help="compare against a snapshot; only findings absent from it fail",
    )
    parser.add_argument(
        "--write-baseline",
        type=Path,
        metavar="FILE",
        help="snapshot the current findings as the accepted baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalog and exit",
    )


def command_analyze(args: argparse.Namespace) -> int:
    """Entry point shared by the repro CLI dispatcher and the tests."""
    if args.list_rules:
        for rule_id, rule in sorted(rule_catalog().items()):
            print(f"{rule_id}  {rule.title}")
            print(f"        {rule.rationale}")
        return 0
    paths = [Path(path) for path in args.paths] or [default_target()]
    rules = select_rules(args.rules)
    report = analyze_paths(paths, rules=rules)
    findings = report.findings
    if args.baseline is not None and args.baseline.exists():
        findings = new_findings(findings, read_baseline(args.baseline))
    if args.write_baseline is not None:
        write_baseline(args.write_baseline, report.findings)
        print(
            f"wrote baseline with {len(report.findings)} finding(s) to "
            f"{args.write_baseline}"
        )
        return 0
    if args.format == "json":
        payload = report.to_json()
        payload["findings"] = [finding.to_json() for finding in findings]
        payload["clean"] = not findings
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for finding in findings:
            print(finding.format())
        suffix = ""
        if args.baseline is not None and args.baseline.exists():
            adopted = len(report.findings) - len(findings)
            suffix = f" ({adopted} adopted by baseline)"
        print(
            f"analyzed {report.num_modules} modules with "
            f"{len(report.rule_ids)} rules: {len(findings)} new finding(s), "
            f"{len(report.suppressed)} suppressed{suffix}"
        )
    return 1 if findings else 0


def main(argv: Optional[List[str]] = None) -> int:
    """Standalone entry point (``python -m repro.analysis.cli``)."""
    parser = argparse.ArgumentParser(
        prog="repro analyze",
        description="static determinism/thread-safety checks for the repro tree",
    )
    add_analyze_arguments(parser)
    args = parser.parse_args(argv)
    try:
        return command_analyze(args)
    except AnalysisError as error:
        parser.error(str(error))
        return 2  # unreachable; parser.error() raises SystemExit


if __name__ == "__main__":
    raise SystemExit(main())
