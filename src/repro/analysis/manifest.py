"""Scope manifests: which modules each invariant family applies to.

The determinism rules cannot apply everywhere — the CLI legitimately
iterates report dicts in display order, and the experiment suite
legitimately reads wall clocks for its timing columns.  These manifests
draw the boundary *explicitly* so that adding a module to a
determinism-sensitive subsystem is a reviewable one-line diff here, not an
unstated assumption.

``DETERMINISTIC_MODULES`` lists the dotted prefixes whose outputs feed the
bit-identity claims (E14 ``max deviation = 0``, ``jobs=1`` == ``jobs=4``
runs, batch-invariant reveal serving).  Any new module that computes or
transports costs must be added here — see ``CONTRIBUTING.md``.
"""

from __future__ import annotations

from typing import Tuple

#: Dotted module prefixes whose behaviour must be bit-identical across
#: runs, worker counts and host machines.  DET003 (unordered iteration)
#: applies only inside these prefixes.
DETERMINISTIC_MODULES: Tuple[str, ...] = (
    "repro.core",
    "repro.dynamic_minla",
    "repro.graphs",
    "repro.minla",
    "repro.obs",
    "repro.service",
    "repro.telemetry",
    "repro.vnet",
    "repro.workloads",
)

#: Dotted module prefixes that run worker threads or worker processes.
#: The thread-discipline rules (THR001 lock/manifest discipline, THR002
#: bounded queues — stdlib *and* multiprocessing variants) apply only
#: inside these prefixes.  The prefix match deliberately covers every
#: ``repro.service`` submodule, including the process backend
#: (``repro.service.procworker``, ``repro.service.shm``), so new serving
#: modules are under both gates the moment they are created.
THREADED_MODULES: Tuple[str, ...] = ("repro.service",)

#: Dotted modules allowed to read the monotonic clock directly.  OBS001
#: flags ``time.monotonic()`` / ``time.perf_counter()`` (and their ``_ns``
#: variants) everywhere else: timing must flow through the
#: :mod:`repro.obs.clock` seam so tests can substitute a
#: :class:`~repro.obs.clock.ManualClock` and so every latency number in
#: the tree answers to one clock policy.  This is an exact-module list,
#: not a prefix list — the seam is deliberately one file wide.
CLOCK_SEAM_MODULES: Tuple[str, ...] = ("repro.obs.clock",)

#: Dotted module prefixes allowed to compute durations from manually
#: paired clock reads (``end - start``).  OBS002 flags the pattern
#: everywhere else: ad-hoc duration math belongs in a
#: ``profile_zone(...)`` block (:mod:`repro.obs.profile`), where it
#: aggregates into mergeable histograms and answers to the manual clock in
#: tests.  The observability layer itself and the experiment-timing
#: harness are the sanctioned exceptions — they *implement* the seam.
#: Per-request latency measurement in the serving layer carries per-line
#: ``# repro: allow[obs002]`` waivers instead, keeping each remaining
#: pairing a reviewed decision.
ZONE_TIMING_EXEMPT_MODULES: Tuple[str, ...] = (
    "repro.obs",
    "repro.experiments.parallel",
)


def module_matches(module: str, prefixes: Tuple[str, ...]) -> bool:
    """Whether ``module`` falls under any manifest prefix.

    A prefix matches itself and its submodules (``repro.core`` matches
    ``repro.core.simulator`` but not ``repro.core_extras``).
    """
    return any(
        module == prefix or module.startswith(prefix + ".") for prefix in prefixes
    )


def is_deterministic_module(module: str) -> bool:
    """Whether the determinism rules apply to ``module``."""
    return module_matches(module, DETERMINISTIC_MODULES)


def is_threaded_module(module: str) -> bool:
    """Whether the thread-discipline rules apply to ``module``."""
    return module_matches(module, THREADED_MODULES)


def is_clock_seam_module(module: str) -> bool:
    """Whether ``module`` is the sanctioned monotonic-clock reader."""
    return module in CLOCK_SEAM_MODULES


def is_zone_timing_exempt_module(module: str) -> bool:
    """Whether OBS002 (paired clock reads for durations) skips ``module``."""
    return module_matches(module, ZONE_TIMING_EXEMPT_MODULES)
