"""Baseline snapshots: adopt known findings, fail only on new ones.

A baseline is a JSON snapshot of accepted findings.  Comparing a run
against it keeps the gate green while legacy findings are burned down,
without letting *new* violations ride in — the standard ratchet workflow::

    python -m repro analyze --write-baseline analysis-baseline.json
    ...later...
    python -m repro analyze --baseline analysis-baseline.json

Matching uses :meth:`Finding.key` (rule, path, message) as a multiset, so
pure line drift never resurrects an adopted finding, while a second
occurrence of the same violation in the same file is correctly new.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import List, Sequence

from repro.analysis.findings import Finding
from repro.errors import AnalysisError

#: Schema version of the snapshot file.
BASELINE_VERSION = 1


def write_baseline(path: Path, findings: Sequence[Finding]) -> None:
    """Snapshot ``findings`` as the accepted baseline at ``path``."""
    payload = {
        "version": BASELINE_VERSION,
        "findings": [finding.to_json() for finding in sorted(findings)],
    }
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def read_baseline(path: Path) -> List[Finding]:
    """Load a baseline snapshot written by :func:`write_baseline`."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as error:
        raise AnalysisError(f"cannot read baseline {path}: {error}") from error
    except json.JSONDecodeError as error:
        raise AnalysisError(f"malformed baseline {path}: {error}") from error
    if not isinstance(payload, dict) or "findings" not in payload:
        raise AnalysisError(
            f"malformed baseline {path}: expected an object with 'findings'"
        )
    version = payload.get("version")
    if version != BASELINE_VERSION:
        raise AnalysisError(
            f"unsupported baseline version {version!r} in {path} "
            f"(expected {BASELINE_VERSION})"
        )
    return [Finding.from_json(entry) for entry in payload["findings"]]


def new_findings(
    findings: Sequence[Finding], baseline: Sequence[Finding]
) -> List[Finding]:
    """Findings not covered by the baseline (multiset difference on keys)."""
    budget = Counter(finding.key() for finding in baseline)
    fresh: List[Finding] = []
    for finding in sorted(findings):
        if budget[finding.key()] > 0:
            budget[finding.key()] -= 1
        else:
            fresh.append(finding)
    return fresh
