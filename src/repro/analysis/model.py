"""The unit of analysis: one parsed module, and the project that holds them.

:class:`SourceModule` bundles everything a rule may want about one file —
the AST, the raw source, the dotted module name, and the parsed suppression
comments.  :class:`Project` is the whole analyzed tree at once, indexed by
dotted name, for rules that must resolve re-exports across files (API001).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.analysis.manifest import is_deterministic_module, is_threaded_module
from repro.analysis.suppress import Suppression, parse_suppressions
from repro.errors import AnalysisError


@dataclass
class SourceModule:
    """One parsed Python module under analysis."""

    path: Path
    """Absolute path of the file."""
    rel_path: str
    """Path relative to the analysis root (the identity findings carry)."""
    module: str
    """Dotted module name (``repro.service.broker``)."""
    source: str
    tree: ast.Module
    suppressions: List[Suppression] = field(default_factory=list)

    @property
    def is_package_init(self) -> bool:
        """Whether this module is a package ``__init__``."""
        return self.path.name == "__init__.py"

    @property
    def is_deterministic(self) -> bool:
        """Whether the determinism manifest covers this module."""
        return is_deterministic_module(self.module)

    @property
    def is_threaded(self) -> bool:
        """Whether the thread-discipline manifest covers this module."""
        return is_threaded_module(self.module)


@dataclass
class Project:
    """Every module of one analysis run, indexed by dotted name."""

    root: Path
    modules: Dict[str, SourceModule] = field(default_factory=dict)

    def get(self, module: str) -> Optional[SourceModule]:
        """Look one module up by dotted name (``None`` when not analyzed)."""
        return self.modules.get(module)

    def ordered(self) -> List[SourceModule]:
        """Modules in deterministic (path-sorted) order."""
        return sorted(self.modules.values(), key=lambda mod: mod.rel_path)


def module_name_for(path: Path, root: Path) -> str:
    """Derive the dotted module name of ``path`` within the analyzed tree.

    The name is anchored at the last path component named ``repro`` when
    one exists (so ``src/repro/service/broker.py`` maps to
    ``repro.service.broker`` regardless of the checkout location);
    otherwise it falls back to the path relative to ``root``.
    """
    parts = list(path.with_suffix("").parts)
    if parts and parts[-1] == "__init__":
        parts = parts[:-1]
    anchor = None
    for index in range(len(parts) - 1, -1, -1):
        if parts[index] == "repro":
            anchor = index
            break
    if anchor is not None:
        return ".".join(parts[anchor:])
    try:
        relative = path.with_suffix("").relative_to(root)
        rel_parts = list(relative.parts)
        if rel_parts and rel_parts[-1] == "__init__":
            rel_parts = rel_parts[:-1]
        return ".".join(rel_parts) if rel_parts else path.stem
    except ValueError:
        return path.stem


def load_module(path: Path, root: Path) -> SourceModule:
    """Parse one file into a :class:`SourceModule`."""
    try:
        source = path.read_text(encoding="utf-8")
    except OSError as error:
        raise AnalysisError(f"cannot read {path}: {error}") from error
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as error:
        raise AnalysisError(f"cannot parse {path}: {error}") from error
    try:
        rel_path = str(path.relative_to(root))
    except ValueError:
        rel_path = str(path)
    module = SourceModule(
        path=path,
        rel_path=rel_path,
        module=module_name_for(path, root),
        source=source,
        tree=tree,
    )
    module.suppressions = parse_suppressions(rel_path, source)
    return module


def load_project(paths: Sequence[Path], root: Path) -> Project:
    """Load every ``.py`` file under ``paths`` into one :class:`Project`."""
    project = Project(root=root)
    files: List[Path] = []
    for path in paths:
        if path.is_dir():
            files.extend(sorted(path.rglob("*.py")))
        elif path.suffix == ".py":
            files.append(path)
        else:
            raise AnalysisError(f"not a Python source path: {path}")
    for file_path in files:
        module = load_module(file_path, root)
        project.modules[module.module] = module
    return project
