"""The analysis engine: rule registry, tree walk, suppression, reporting.

:func:`analyze_paths` is the whole pipeline — load the tree, run the
requested rules, fold in the suppression comments — and returns an
:class:`AnalysisReport` whose :attr:`~AnalysisReport.findings` list is
exactly what ``python -m repro analyze`` prints and what the tier-1 gate
asserts empty.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.findings import Finding
from repro.analysis.model import Project, load_project
from repro.analysis.rulebase import Rule
from repro.analysis.rules_api import PublicAnnotationsRule
from repro.analysis.rules_determinism import (
    UnorderedIterationRule,
    UnseededRandomnessRule,
    WallClockTaintRule,
)
from repro.analysis.rules_obs import MonotonicClockSeamRule, ZoneTimingSeamRule
from repro.analysis.rules_threading import LockDisciplineRule, UnboundedQueueRule
from repro.analysis.suppress import (
    RULE_MISSING_REASON,
    RULE_STALE,
    Suppression,
    apply_suppressions,
)
from repro.errors import AnalysisError


def default_rules() -> List[Rule]:
    """One fresh instance of every registered rule, in catalog order."""
    return [
        UnseededRandomnessRule(),
        WallClockTaintRule(),
        UnorderedIterationRule(),
        LockDisciplineRule(),
        UnboundedQueueRule(),
        PublicAnnotationsRule(),
        MonotonicClockSeamRule(),
        ZoneTimingSeamRule(),
    ]


def rule_catalog() -> Dict[str, Rule]:
    """``rule id -> rule`` for every registered rule."""
    return {rule.rule_id: rule for rule in default_rules()}


def select_rules(rule_ids: Optional[Sequence[str]]) -> List[Rule]:
    """Resolve ``--rules`` ids (case-insensitive) to rule instances."""
    catalog = rule_catalog()
    if not rule_ids:
        return list(catalog.values())
    selected: List[Rule] = []
    for rule_id in rule_ids:
        canonical = rule_id.strip().upper()
        if canonical not in catalog:
            known = ", ".join(sorted(catalog))
            raise AnalysisError(f"unknown rule {rule_id!r}; known rules: {known}")
        selected.append(catalog[canonical])
    return selected


@dataclass
class AnalysisReport:
    """Everything one analysis run produced."""

    root: str
    """The analysis root findings' paths are relative to."""
    rule_ids: Tuple[str, ...]
    """The rules that ran, in catalog order."""
    num_modules: int
    findings: List[Finding] = field(default_factory=list)
    """Unsuppressed findings, including SUP001/SUP002 meta-findings."""
    suppressed: List[Finding] = field(default_factory=list)
    """Findings silenced by a justified ``# repro: allow[...]`` comment."""

    @property
    def clean(self) -> bool:
        """Whether the tree passed (no unsuppressed findings)."""
        return not self.findings

    def to_json(self) -> Dict:
        """The machine-readable report shape of ``--format json``."""
        return {
            "root": self.root,
            "rules": list(self.rule_ids),
            "modules": self.num_modules,
            "findings": [finding.to_json() for finding in self.findings],
            "suppressed": [finding.to_json() for finding in self.suppressed],
            "clean": self.clean,
        }

    def to_text(self) -> str:
        """The human report: one line per finding plus a summary line."""
        lines = [finding.format() for finding in self.findings]
        lines.append(
            f"analyzed {self.num_modules} modules with "
            f"{len(self.rule_ids)} rules: {len(self.findings)} finding(s), "
            f"{len(self.suppressed)} suppressed"
        )
        return "\n".join(lines)


def analyze_project(
    project: Project, rules: Optional[Sequence[Rule]] = None
) -> AnalysisReport:
    """Run ``rules`` over an already-loaded project."""
    active_rules = list(rules) if rules is not None else default_rules()
    raw: List[Finding] = []
    for rule in active_rules:
        for module in project.ordered():
            raw.extend(rule.check(module))
        raw.extend(rule.check_project(project))
    suppressions: List[Suppression] = []
    for module in project.ordered():
        suppressions.extend(module.suppressions)
    active, suppressed, meta = apply_suppressions(
        raw, suppressions, executed_rules=[rule.rule_id for rule in active_rules]
    )
    findings = sorted(active + meta)
    return AnalysisReport(
        root=str(project.root),
        rule_ids=tuple(rule.rule_id for rule in active_rules),
        num_modules=len(project.modules),
        findings=findings,
        suppressed=sorted(suppressed),
    )


def analyze_paths(
    paths: Sequence[Path],
    root: Optional[Path] = None,
    rules: Optional[Sequence[Rule]] = None,
) -> AnalysisReport:
    """Load and analyze a source tree.

    ``root`` anchors the relative paths findings carry (and therefore the
    identities baselines match on); it defaults to the first path's parent
    for files, or the first path itself for directories.
    """
    if not paths:
        raise AnalysisError("analyze_paths() needs at least one path")
    resolved = [Path(path).resolve() for path in paths]
    for path in resolved:
        if not path.exists():
            raise AnalysisError(f"no such path: {path}")
    if root is None:
        first = resolved[0]
        root = first if first.is_dir() else first.parent
    project = load_project(resolved, Path(root).resolve())
    return analyze_project(project, rules)


#: Rule ids of the suppression meta-rules, re-exported for reporting.
META_RULES: Tuple[str, str] = (RULE_MISSING_REASON, RULE_STALE)
