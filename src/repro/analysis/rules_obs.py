"""Observability rules: the monotonic-clock seam.

* **OBS001** — every monotonic-clock reading in the tree must flow
  through :func:`repro.obs.clock.now`.  Direct ``time.monotonic()`` /
  ``time.perf_counter()`` calls (and their ``_ns`` variants, and bare
  names bound by ``from time import perf_counter``) are flagged outside
  the one-file seam listed in
  :data:`~repro.analysis.manifest.CLOCK_SEAM_MODULES`.  The seam is what
  lets tests drive latency histograms and span traces with a
  :class:`~repro.obs.clock.ManualClock`, and what keeps "which clock do
  we time with" a one-line policy decision instead of a tree-wide grep.

DET002 polices where clock-derived *values* may flow (never into cost
accounting); OBS001 polices where clock *reads* may happen at all.  Both
reuse the same detection tables.
"""

from __future__ import annotations

import ast
from typing import Iterator, Set

from repro.analysis.findings import Finding
from repro.analysis.manifest import is_clock_seam_module
from repro.analysis.model import SourceModule
from repro.analysis.rulebase import Rule, call_name

#: Dotted callee names that read the monotonic clock.  Narrower than
#: DET002's ``_CLOCK_CALLS``: wall-time reads (``time.time``,
#: ``datetime.now``) are not latency measurements and have their own
#: legitimate uses (run-store timestamps), so OBS001 leaves them to
#: DET002's taint tracking.
_MONOTONIC_CALLS = frozenset(
    {
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
    }
)

#: The same functions when imported bare (``from time import perf_counter``).
_MONOTONIC_BARE_NAMES = frozenset(
    {"monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"}
)


class MonotonicClockSeamRule(Rule):
    """OBS001: monotonic-clock reads go through ``repro.obs.clock`` only."""

    rule_id = "OBS001"
    title = "monotonic clock read outside the obs clock seam"
    rationale = (
        "timing must flow through repro.obs.clock.now() so tests can "
        "substitute a manual clock and the tree keeps a single clock "
        "policy; direct time.monotonic()/perf_counter() calls bypass it"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if is_clock_seam_module(module.module):
            return
        bare_imports = self._monotonic_imports(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            if name in _MONOTONIC_CALLS or name in bare_imports:
                yield self.finding(
                    module,
                    node,
                    f"direct {name}() call bypasses the clock seam; import "
                    "now from repro.obs.clock (the one sanctioned "
                    "monotonic-clock reader) instead",
                )

    @staticmethod
    def _monotonic_imports(tree: ast.Module) -> Set[str]:
        """Bare names bound to monotonic clocks by ``from time import ...``."""
        names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _MONOTONIC_BARE_NAMES:
                        names.add(alias.asname or alias.name)
        return names
