"""Observability rules: the monotonic-clock seam.

* **OBS001** — every monotonic-clock reading in the tree must flow
  through :func:`repro.obs.clock.now`.  Direct ``time.monotonic()`` /
  ``time.perf_counter()`` calls (and their ``_ns`` variants, and bare
  names bound by ``from time import perf_counter``) are flagged outside
  the one-file seam listed in
  :data:`~repro.analysis.manifest.CLOCK_SEAM_MODULES`.  The seam is what
  lets tests drive latency histograms and span traces with a
  :class:`~repro.obs.clock.ManualClock`, and what keeps "which clock do
  we time with" a one-line policy decision instead of a tree-wide grep.

* **OBS002** — duration measurement belongs in ``profile_zone(...)``
  blocks, not in manually paired clock reads.  The rule flags
  ``end - start`` subtractions where *both* operands are clock readings
  (a direct call, a local assigned straight from one, or an attribute
  assigned straight from one anywhere in the module), outside the
  :data:`~repro.analysis.manifest.ZONE_TIMING_EXEMPT_MODULES` prefixes.
  Deliberately conservative: ``deadline - now()`` where ``deadline`` was
  computed as ``now() + timeout`` does not flag (the deadline is derived,
  not a raw reading), and taint never propagates name-to-name — so the
  findings stay high-precision and each surviving pairing is either a
  zone candidate or a reviewed per-line waiver.

DET002 polices where clock-derived *values* may flow (never into cost
accounting); OBS001 polices where clock *reads* may happen at all; OBS002
polices how readings may be *combined*.  All three reuse the same
detection tables.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Set, Tuple

from repro.analysis.findings import Finding
from repro.analysis.manifest import is_clock_seam_module, is_zone_timing_exempt_module
from repro.analysis.model import SourceModule
from repro.analysis.rulebase import (
    Rule,
    call_name,
    dotted_name,
    scope_statements,
    scopes,
)

#: Dotted callee names that read the monotonic clock.  Narrower than
#: DET002's ``_CLOCK_CALLS``: wall-time reads (``time.time``,
#: ``datetime.now``) are not latency measurements and have their own
#: legitimate uses (run-store timestamps), so OBS001 leaves them to
#: DET002's taint tracking.
_MONOTONIC_CALLS = frozenset(
    {
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
    }
)

#: The same functions when imported bare (``from time import perf_counter``).
_MONOTONIC_BARE_NAMES = frozenset(
    {"monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"}
)


class MonotonicClockSeamRule(Rule):
    """OBS001: monotonic-clock reads go through ``repro.obs.clock`` only."""

    rule_id = "OBS001"
    title = "monotonic clock read outside the obs clock seam"
    rationale = (
        "timing must flow through repro.obs.clock.now() so tests can "
        "substitute a manual clock and the tree keeps a single clock "
        "policy; direct time.monotonic()/perf_counter() calls bypass it"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if is_clock_seam_module(module.module):
            return
        bare_imports = self._monotonic_imports(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = call_name(node)
            if name is None:
                continue
            if name in _MONOTONIC_CALLS or name in bare_imports:
                yield self.finding(
                    module,
                    node,
                    f"direct {name}() call bypasses the clock seam; import "
                    "now from repro.obs.clock (the one sanctioned "
                    "monotonic-clock reader) instead",
                )

    @staticmethod
    def _monotonic_imports(tree: ast.Module) -> Set[str]:
        """Bare names bound to monotonic clocks by ``from time import ...``."""
        names: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                for alias in node.names:
                    if alias.name in _MONOTONIC_BARE_NAMES:
                        names.add(alias.asname or alias.name)
        return names


class ZoneTimingSeamRule(Rule):
    """OBS002: durations come from profile zones, not paired clock reads."""

    rule_id = "OBS002"
    title = "manually paired clock reads used for a duration"
    rationale = (
        "subtracting two clock readings re-implements what "
        "profile_zone(...) already does with mergeable histograms and "
        "ManualClock testability; wrap the timed block in a zone (or add "
        "a reviewed allow[obs002] waiver for per-request latency paths)"
    )

    def check(self, module: SourceModule) -> Iterator[Finding]:
        if is_zone_timing_exempt_module(module.module):
            return
        call_names = self._clock_call_names(module.tree)
        if not call_names:
            return
        tainted_attrs = self._tainted_attributes(module.tree, call_names)
        # scope_statements() re-walks compound statements' bodies, so one
        # subtraction can be visited more than once; report each site once.
        seen: Set[Tuple[int, int]] = set()
        for scope in scopes(module.tree):
            tainted: Set[str] = set()
            for statement in scope_statements(scope):
                for found in self._flag_pairings(
                    module, statement, call_names, tainted, tainted_attrs
                ):
                    key = (found.line, found.column)
                    if key not in seen:
                        seen.add(key)
                        yield found
                self._absorb_taint(statement, call_names, tainted)

    # ------------------------------------------------------------------
    # Detection tables
    # ------------------------------------------------------------------
    @staticmethod
    def _clock_call_names(tree: ast.Module) -> Set[str]:
        """Every callee name that reads a clock in this module.

        The sanctioned reader (``repro.obs.clock.now``, however aliased)
        counts too: OBS002 is about *pairing* readings, which is just as
        unmergeable through the seam as around it.
        """
        names: Set[str] = set(_MONOTONIC_CALLS)
        for node in ast.walk(tree):
            if not isinstance(node, ast.ImportFrom):
                continue
            if node.module == "time":
                for alias in node.names:
                    if alias.name in _MONOTONIC_BARE_NAMES:
                        names.add(alias.asname or alias.name)
            elif node.module == "repro.obs.clock":
                for alias in node.names:
                    if alias.name == "now":
                        names.add(alias.asname or alias.name)
        return names

    @staticmethod
    def _tainted_attributes(tree: ast.Module, call_names: Set[str]) -> Set[str]:
        """Attributes assigned directly from a clock call, module-wide.

        Attributes cross method boundaries (``self._started_at`` is set in
        ``__init__`` and subtracted in a reporting method), so unlike local
        names they are collected over the whole module up front.
        """
        tainted: Set[str] = set()
        for node in ast.walk(tree):
            value, targets = ZoneTimingSeamRule._assignment(node)
            if value is None or not isinstance(value, ast.Call):
                continue
            name = call_name(value)
            if name is None or name not in call_names:
                continue
            for target in targets:
                if isinstance(target, ast.Attribute):
                    dotted = dotted_name(target)
                    if dotted is not None:
                        tainted.add(dotted)
        return tainted

    @staticmethod
    def _assignment(node: ast.AST) -> "Tuple[ast.AST, List[ast.AST]]":
        """The ``(value, targets)`` of an assignment statement, else ``(None, [])``."""
        if isinstance(node, ast.Assign):
            return node.value, list(node.targets)
        if isinstance(node, ast.AnnAssign) and node.value is not None:
            return node.value, [node.target]
        return None, []

    # ------------------------------------------------------------------
    # Per-scope walk
    # ------------------------------------------------------------------
    def _flag_pairings(
        self,
        module: SourceModule,
        statement: ast.stmt,
        call_names: Set[str],
        tainted: Set[str],
        tainted_attrs: Set[str],
    ) -> Iterator[Finding]:
        for node in ast.walk(statement):
            if not isinstance(node, ast.BinOp) or not isinstance(node.op, ast.Sub):
                continue
            if self._is_clock_reading(
                node.left, call_names, tainted, tainted_attrs
            ) and self._is_clock_reading(
                node.right, call_names, tainted, tainted_attrs
            ):
                yield self.finding(
                    module,
                    node,
                    "duration computed by subtracting two clock readings; "
                    "wrap the timed block in profile_zone(...) from "
                    "repro.obs.profile instead of pairing reads by hand",
                )

    @staticmethod
    def _is_clock_reading(
        node: ast.AST,
        call_names: Set[str],
        tainted: Set[str],
        tainted_attrs: Set[str],
    ) -> bool:
        if isinstance(node, ast.Call):
            name = call_name(node)
            return name is not None and name in call_names
        if isinstance(node, ast.Name):
            return node.id in tainted
        if isinstance(node, ast.Attribute):
            dotted = dotted_name(node)
            return dotted is not None and dotted in tainted_attrs
        return False

    @classmethod
    def _absorb_taint(
        cls, statement: ast.stmt, call_names: Set[str], tainted: Set[str]
    ) -> None:
        """Mark local names assigned directly from a clock call.

        Direct assignment only — no name-to-name propagation — so derived
        values (``deadline = now() + timeout``) stay untainted and the
        rule's findings stay reviewable one by one.
        """
        value, targets = cls._assignment(statement)
        if value is None or not isinstance(value, ast.Call):
            return
        name = call_name(value)
        if name is None or name not in call_names:
            return
        for target in targets:
            if isinstance(target, ast.Name):
                tainted.add(target.id)
