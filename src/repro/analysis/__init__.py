"""Static determinism/thread-safety analysis of the repro tree.

Every headline claim of this reproduction — E14's ``max deviation = 0``,
bit-identical ``jobs=1`` vs ``jobs=4`` runs, batch-invariant reveal
serving — rests on code conventions: randomness is always seeded and
threaded through, wall clocks never feed cost accounting, deterministic
modules never iterate unordered collections bare, service queues are
always bounded.  This package *mechanizes* those conventions as an
AST-based checker (stdlib :mod:`ast` only) with:

* a rule engine (:mod:`repro.analysis.checker`) over a parsed
  :mod:`project model <repro.analysis.model>`,
* six primary rules — DET001/DET002/DET003
  (:mod:`~repro.analysis.rules_determinism`), THR001/THR002
  (:mod:`~repro.analysis.rules_threading`), API001
  (:mod:`~repro.analysis.rules_api`) — plus the SUP001/SUP002 meta-rules
  policing the waiver mechanism itself,
* per-line ``# repro: allow[rule] — reason`` suppressions
  (:mod:`~repro.analysis.suppress`),
* baseline snapshots for ratcheting (:mod:`~repro.analysis.baseline`),
* the ``python -m repro analyze`` CLI (:mod:`~repro.analysis.cli`).

The checker self-hosts: ``tests/test_analysis.py`` runs it over the whole
``src/repro`` tree and asserts zero unsuppressed findings, so the gate is
part of tier-1.  See ``DESIGN.md`` ("Analysis subsystem") for the rule
catalog and ``CONTRIBUTING.md`` for the manifest obligations of new
modules.
"""

from repro.analysis.baseline import new_findings, read_baseline, write_baseline
from repro.analysis.checker import (
    AnalysisReport,
    analyze_paths,
    analyze_project,
    default_rules,
    rule_catalog,
    select_rules,
)
from repro.analysis.findings import Finding
from repro.analysis.manifest import (
    DETERMINISTIC_MODULES,
    THREADED_MODULES,
    is_deterministic_module,
    is_threaded_module,
)
from repro.analysis.suppress import (
    RULE_MISSING_REASON,
    RULE_STALE,
    Suppression,
    parse_suppressions,
)

__all__ = [
    "AnalysisReport",
    "DETERMINISTIC_MODULES",
    "Finding",
    "RULE_MISSING_REASON",
    "RULE_STALE",
    "Suppression",
    "THREADED_MODULES",
    "analyze_paths",
    "analyze_project",
    "default_rules",
    "is_deterministic_module",
    "is_threaded_module",
    "new_findings",
    "parse_suppressions",
    "read_baseline",
    "rule_catalog",
    "select_rules",
    "write_baseline",
]
