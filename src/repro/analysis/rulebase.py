"""Rule protocol and shared AST helpers of the analysis subsystem.

A rule is a small object with an id, a one-line rationale, and either a
per-module :meth:`Rule.check` or a whole-project
:meth:`Rule.check_project` (for cross-file rules such as API001).  Rules
yield :class:`~repro.analysis.findings.Finding` objects; suppression and
reporting are the engine's job, so rules stay pure syntax walks.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.analysis.findings import Finding
from repro.analysis.model import Project, SourceModule


class Rule:
    """One mechanized invariant.

    Subclasses set :attr:`rule_id`/:attr:`title`/:attr:`rationale` and
    override :meth:`check` (per module) or :meth:`check_project` (once per
    run, receives the whole project).  The default implementations yield
    nothing, so a subclass only implements the granularity it needs.
    """

    rule_id: str = "RULE000"
    title: str = ""
    rationale: str = ""

    def check(self, module: SourceModule) -> Iterator[Finding]:
        """Per-module findings (default: none)."""
        return iter(())

    def check_project(self, project: Project) -> Iterator[Finding]:
        """Whole-project findings (default: none)."""
        return iter(())

    def finding(
        self, module: SourceModule, node: ast.AST, message: str
    ) -> Finding:
        """Build a finding anchored at ``node`` inside ``module``."""
        return Finding(
            path=module.rel_path,
            line=getattr(node, "lineno", 1),
            column=getattr(node, "col_offset", 0),
            rule=self.rule_id,
            message=message,
        )


def dotted_name(node: ast.AST) -> Optional[str]:
    """Render ``a.b.c`` attribute/name chains; ``None`` for anything else."""
    parts: List[str] = []
    current = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if isinstance(current, ast.Name):
        parts.append(current.id)
        return ".".join(reversed(parts))
    return None


def call_name(node: ast.Call) -> Optional[str]:
    """The dotted callee name of a call, when statically resolvable."""
    return dotted_name(node.func)


def scope_statements(body: List[ast.stmt]) -> Iterator[ast.stmt]:
    """Yield one scope's statements in source order.

    Descends into compound statements (``if``/``for``/``with``/``try``)
    but *not* into nested function or class definitions — those are their
    own scopes.  Unlike :func:`ast.walk` the order is the textual order,
    which the DET002 taint walk relies on (taint introduced by a statement
    can only reach sinks at or after it).
    """
    for statement in body:
        yield statement
        if isinstance(
            statement, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
        ):
            continue
        for field_name in ("body", "orelse", "finalbody"):
            inner = getattr(statement, field_name, None)
            if inner:
                yield from scope_statements(inner)
        for handler in getattr(statement, "handlers", []) or []:
            yield from scope_statements(handler.body)


def scopes(tree: ast.Module) -> Iterator[List[ast.stmt]]:
    """Every statement scope of a module: the top level, then each function."""
    yield tree.body
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node.body
