"""The finding model of the static-analysis subsystem.

A :class:`Finding` is one rule violation anchored to a source location.
Findings are value objects: hashable, ordered by location, and round-trip
through JSON (the ``--format json`` report and the ``--baseline`` snapshot
both serialize this shape).  The *baseline identity* of a finding
deliberately omits the line number — :meth:`Finding.key` — so that pure
line drift (code added above a known finding) does not resurrect it as
"new" in a baseline comparison.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass
from typing import Any, Dict, Tuple

from repro.errors import AnalysisError


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location."""

    path: str
    """Path of the offending module, relative to the analysis root."""
    line: int
    """1-based line of the offending node."""
    column: int
    """0-based column of the offending node."""
    rule: str
    """The rule identifier (``DET001``, ``THR002``, ...)."""
    message: str
    """Human explanation of the violation, including the expected remedy."""

    def key(self) -> Tuple[str, str, str]:
        """Line-insensitive identity used by baseline comparisons."""
        return (self.rule, self.path, self.message)

    def format(self) -> str:
        """The one-line ``path:line:col: RULE message`` text rendering."""
        return f"{self.path}:{self.line}:{self.column}: {self.rule} {self.message}"

    def to_json(self) -> Dict[str, Any]:
        """The JSON object shape of one finding."""
        return asdict(self)

    @classmethod
    def from_json(cls, payload: Dict[str, Any]) -> "Finding":
        """Rebuild a finding from :meth:`to_json` output (strict)."""
        try:
            return cls(
                path=str(payload["path"]),
                line=int(payload["line"]),
                column=int(payload["column"]),
                rule=str(payload["rule"]),
                message=str(payload["message"]),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise AnalysisError(f"malformed finding payload: {payload!r}") from error
