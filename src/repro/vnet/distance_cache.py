"""Per-pair slot-distance caching with incremental invalidation.

Both streamed controllers of :mod:`repro.vnet.controller` (and every shard
engine of :mod:`repro.service`) spend their serving loop computing the slot
distance of communicating virtual-node pairs.  Under Zipf-skewed datacenter
traffic a few hot pairs carry most requests, so caching the per-pair
distance pays — but the demand-aware paths *re-embed*, and a re-embedding
changes some distances.

The static controller's cache never invalidates (the embedding is frozen).
This module adds the missing middle ground: :class:`SlotDistanceCache`
tracks, for every cached pair, the slots its endpoints occupied when the
distance was computed, and :meth:`SlotDistanceCache.rebind` evicts **only
the pairs with a moved endpoint** instead of flushing the whole cache.  A
typical reveal migrates the two merging components and leaves the rest of
the arrangement untouched, so most of the hot-pair cache survives every
batch.

Correctness is structural, not probabilistic: a pair's communication cost
depends only on its endpoints' slots, so a cache entry is returned only
while both endpoints still sit where they sat when the entry was computed.
Costs accumulate in request order either way, which keeps the cached totals
bit-identical to the uncached loop (asserted in ``tests/test_vnet.py``).
"""

from __future__ import annotations

from typing import Dict, Hashable, Set, Tuple

from repro.obs.profile import count_work as _count_work
from repro.vnet.embedding import Embedding

Node = Hashable
Pair = Tuple[Node, Node]


class SlotDistanceCache:
    """Cache of per-pair communication costs over a (re-)bindable embedding.

    Parameters
    ----------
    embedding:
        The embedding distances are computed against.  Replace it with
        :meth:`rebind` after a re-embedding; only entries whose endpoints
        moved are evicted.
    """

    def __init__(self, embedding: Embedding) -> None:
        self._embedding = embedding
        self._pair_cost: Dict[Pair, float] = {}
        self._pairs_by_node: Dict[Node, Set[Pair]] = {}
        self._slot_of_node: Dict[Node, int] = {}

    @property
    def embedding(self) -> Embedding:
        """The embedding the cached distances refer to."""
        return self._embedding

    def __len__(self) -> int:
        return len(self._pair_cost)

    def cost(self, u: Node, v: Node) -> float:
        """The communication cost of one ``(u, v)`` message, cached."""
        pair = (u, v)
        cached = self._pair_cost.get(pair)
        if cached is not None:
            _count_work("vnet.distance_cache.hits")
            return cached
        _count_work("vnet.distance_cache.misses")
        embedding = self._embedding
        slot_u = embedding.slot_of(u)
        slot_v = embedding.slot_of(v)
        cost = embedding.datacenter.communication_cost(slot_u, slot_v)
        self._pair_cost[pair] = cost
        self._pairs_by_node.setdefault(u, set()).add(pair)
        self._pairs_by_node.setdefault(v, set()).add(pair)
        self._slot_of_node[u] = slot_u
        self._slot_of_node[v] = slot_v
        return cost

    def rebind(self, embedding: Embedding) -> int:
        """Switch to a new embedding, evicting only pairs whose endpoints moved.

        Returns the number of evicted pair entries (0 when the re-embedding
        did not touch any cached node — the common case under skewed
        traffic).  Surviving nodes keep their tracked slot: it is equal under
        the new embedding by definition of "not moved".
        """
        self._embedding = embedding
        slot_of = embedding.slot_of
        moved = [
            node
            # repro: allow[det003] — eviction bookkeeping; the evicted set is order-independent
            for node, slot in self._slot_of_node.items()
            if slot_of(node) != slot
        ]
        evicted = 0
        for node in moved:
            for pair in self._pairs_by_node.pop(node, ()):
                if self._pair_cost.pop(pair, None) is not None:
                    evicted += 1
                other = pair[1] if pair[0] == node else pair[0]
                if other != node:
                    siblings = self._pairs_by_node.get(other)
                    if siblings is not None:
                        siblings.discard(pair)
                        if not siblings:
                            del self._pairs_by_node[other]
                            self._slot_of_node.pop(other, None)
            # ``pop``: the node may already be untracked when an earlier
            # moved endpoint evicted the last pair touching it.
            self._slot_of_node.pop(node, None)
        _count_work("vnet.distance_cache.evictions", evicted)
        return evicted
