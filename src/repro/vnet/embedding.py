"""Virtual-to-physical embeddings on the linear datacenter.

An embedding assigns every virtual node to exactly one slot of a
:class:`~repro.vnet.topology.LinearDatacenter`.  Because the physical
topology is a line with one VM per host, an embedding is exactly a linear
arrangement of the virtual nodes, and re-embedding costs are measured in
adjacent swaps — the same currency as the online learning MinLA problem.
This module is the thin translation layer between the two vocabularies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Sequence, Tuple

from repro.core.permutation import Arrangement
from repro.errors import EmbeddingError
from repro.vnet.topology import LinearDatacenter

VirtualNode = Hashable


@dataclass(frozen=True)
class Embedding:
    """A one-to-one placement of virtual nodes onto datacenter slots."""

    datacenter: LinearDatacenter
    arrangement: Arrangement

    def __post_init__(self) -> None:
        if len(self.arrangement) != self.datacenter.num_slots:
            raise EmbeddingError(
                f"the embedding places {len(self.arrangement)} virtual nodes on "
                f"{self.datacenter.num_slots} slots; counts must match"
            )

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_slot_map(
        cls, datacenter: LinearDatacenter, slot_of: Dict[VirtualNode, int]
    ) -> "Embedding":
        """Build an embedding from an explicit ``virtual node -> slot`` mapping."""
        return cls(datacenter, Arrangement.from_positions(dict(slot_of)))

    @classmethod
    def initial(
        cls, datacenter: LinearDatacenter, virtual_nodes: Sequence[VirtualNode]
    ) -> "Embedding":
        """Place the virtual nodes on slots ``0, 1, …`` in the given order."""
        return cls(datacenter, Arrangement(virtual_nodes))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def slot_of(self, virtual_node: VirtualNode) -> int:
        """The physical slot hosting ``virtual_node``."""
        return self.arrangement.position(virtual_node)

    def virtual_node_at(self, slot: int) -> VirtualNode:
        """The virtual node hosted at ``slot``."""
        if not 0 <= slot < self.datacenter.num_slots:
            raise EmbeddingError(f"slot {slot} is outside the datacenter")
        return self.arrangement[slot]

    def communication_cost(
        self, traffic: Iterable[Tuple[VirtualNode, VirtualNode]]
    ) -> float:
        """Total cost of one message per listed virtual node pair."""
        return sum(
            self.datacenter.communication_cost(self.slot_of(u), self.slot_of(v))
            for u, v in traffic
        )

    def migration_cost_to(self, other: "Embedding") -> float:
        """Cost of migrating from this embedding to ``other``.

        Both embeddings must use the same datacenter and host the same
        virtual nodes; the cost is the minimum number of adjacent VM
        exchanges (the Kendall-tau distance) times the per-swap price.
        """
        if other.datacenter != self.datacenter:
            raise EmbeddingError("migration cost requires the same physical datacenter")
        swaps = self.arrangement.kendall_tau(other.arrangement)
        return self.datacenter.migration_cost(swaps)

    def with_arrangement(self, arrangement: Arrangement) -> "Embedding":
        """A new embedding on the same datacenter using the given arrangement."""
        return Embedding(self.datacenter, arrangement)
