"""Traffic generators for the virtual network embedding case study.

The case study (experiment E10) replays a *communication request stream*
between virtual nodes whose hidden structure is one of the paper's two
fundamental patterns:

* **tenant traffic** — groups of virtual nodes that all talk to each other
  (the clique pattern: distributed training jobs, scale-out databases),
* **pipeline traffic** — chains of virtual nodes where only neighbouring
  stages talk (the line pattern: streaming / ETL pipelines).

A :class:`TrafficTrace` carries both views of the same workload: the raw
request stream (used to charge communication cost) and the induced reveal
sequence (the first time two components of the hidden pattern communicate,
the learning algorithm treats it as a reveal and may migrate).

Since the workloads subsystem landed, this module is a thin adapter: the
request draws come from the lazy generators of
:mod:`repro.workloads.streaming` (bit-identical :class:`random.Random`
call order, guarded by golden fingerprint tests), and this module only
materializes them into the historical :class:`TrafficTrace` shape.
Datacenter-scale consumers (experiment E12) skip the materialization and
iterate :class:`~repro.workloads.base.RequestStream` batches instead.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Hashable, List, Sequence, Tuple

from repro.errors import ReproError
from repro.graphs.components import DisjointSetForest
from repro.graphs.line_forest import LineForest
from repro.graphs.reveal import (
    CliqueRevealSequence,
    GraphKind,
    LineRevealSequence,
    RevealSequence,
    RevealStep,
)
from repro.workloads.streaming import (
    iter_pipeline_requests,
    iter_tenant_requests,
    pair_count_weights,
    pipeline_edges,
    split_groups,
)

VirtualNode = Hashable
Request = Tuple[VirtualNode, VirtualNode]


@dataclass(frozen=True)
class TrafficTrace:
    """A communication workload plus the reveal sequence it induces."""

    kind: GraphKind
    virtual_nodes: Tuple[VirtualNode, ...]
    requests: Tuple[Request, ...]
    sequence: RevealSequence
    """The hidden pattern, revealed in the order its pieces first communicate."""

    @property
    def num_nodes(self) -> int:
        """Number of virtual nodes."""
        return len(self.virtual_nodes)

    @property
    def num_requests(self) -> int:
        """Length of the communication request stream."""
        return len(self.requests)


def tenant_traffic(
    group_sizes: Sequence[int], num_requests: int, rng: random.Random
) -> TrafficTrace:
    """A tenant-group (clique) workload.

    Every request picks a tenant group with probability proportional to its
    number of node pairs and then a uniform pair inside the group.  The
    induced reveal sequence contains, in stream order, the requests that join
    two previously separate components of a tenant — exactly the clique-merge
    requests the learning algorithm reacts to.
    """
    if num_requests < 1:
        raise ReproError("num_requests must be positive")
    if not group_sizes or any(size < 2 for size in group_sizes):
        raise ReproError("every tenant group needs at least two virtual nodes")
    groups = split_groups(group_sizes)
    nodes: List[VirtualNode] = list(range(sum(group_sizes)))
    weights = pair_count_weights(groups)

    requests: List[Request] = []
    reveal_steps: List[RevealStep] = []
    components = DisjointSetForest(nodes)
    for u, v in iter_tenant_requests(groups, weights, num_requests, rng):
        requests.append((u, v))
        if not components.connected(u, v):
            components.union(u, v)
            reveal_steps.append(RevealStep(u, v))
    sequence = CliqueRevealSequence(nodes, reveal_steps)
    return TrafficTrace(
        kind=GraphKind.CLIQUES,
        virtual_nodes=tuple(nodes),
        requests=tuple(requests),
        sequence=sequence,
    )


def pipeline_traffic(
    pipeline_sizes: Sequence[int], num_requests: int, rng: random.Random
) -> TrafficTrace:
    """A pipeline (line) workload.

    Every request is an edge of one of the hidden pipelines (stages only talk
    to their neighbours).  The induced reveal sequence contains each pipeline
    edge the first time it is requested.
    """
    if num_requests < 1:
        raise ReproError("num_requests must be positive")
    if not pipeline_sizes or any(size < 2 for size in pipeline_sizes):
        raise ReproError("every pipeline needs at least two virtual nodes")
    groups = split_groups(pipeline_sizes)
    nodes: List[VirtualNode] = list(range(sum(pipeline_sizes)))
    edges = pipeline_edges(groups)

    requests: List[Request] = []
    reveal_steps: List[RevealStep] = []
    revealed = LineForest(nodes)
    for u, v in iter_pipeline_requests(edges, num_requests, rng):
        requests.append((u, v))
        if not revealed.same_component(u, v):
            revealed.add_edge(u, v)
            reveal_steps.append(RevealStep(u, v))
    sequence = LineRevealSequence(nodes, reveal_steps)
    return TrafficTrace(
        kind=GraphKind.LINES,
        virtual_nodes=tuple(nodes),
        requests=tuple(requests),
        sequence=sequence,
    )
