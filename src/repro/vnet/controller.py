"""Embedding controllers: demand-aware, static and oracle.

The case study of experiment E10 compares three ways of placing virtual
nodes on the linear datacenter while a traffic trace plays out:

* :class:`StaticController` — keep the initial embedding forever (no
  migration cost, full communication cost),
* :class:`OracleController` — an offline yardstick that knows the final
  communication pattern, migrates once to the MinLA embedding closest to the
  initial one, and then never moves,
* :class:`DemandAwareController` — the paper's approach: run an online
  learning MinLA algorithm; whenever the trace reveals a new piece of the
  pattern (two previously separate components communicate for the first
  time) the learner migrates VMs, otherwise requests are served in place.

Every controller returns a :class:`ControllerReport` with the migration and
communication cost split, so the trade-off the paper motivates (migrate more
to communicate less) can be read off directly.  Migration swaps are charged
through the same ledger machinery as the core experiments: the demand-aware
controller records every learner update (with its moving/rearranging phase
attribution) in a :class:`~repro.core.cost.CostLedger`, so E10 reports
phase-split migration costs identically to E2/E3.

Datacenter scale (experiment E12) goes through :meth:`run_stream` instead of
:meth:`run`: the traffic arrives as a lazy
:class:`~repro.workloads.base.RequestStream` consumed in batches, and the
embedding is refreshed **once per batch** rather than once per reveal.
Rebuilding the embedding's slot maps costs ``O(n)``, so per-reveal refreshes
cost ``O(n · reveals)`` — prohibitive at thousands of tenants — while the
batched path pays ``O(n · batches)`` and keeps peak memory bounded by the
batch size (the request list is never materialized).  Requests inside a
batch are served on the embedding as of the batch start; the learner's swap
accounting is unchanged.

Both streamed paths cache per-pair slot distances through a
:class:`~repro.vnet.distance_cache.SlotDistanceCache`.  The static cache
never invalidates; the demand-aware cache invalidates *incrementally* on
every batched re-embedding — only pairs whose endpoints actually moved are
evicted, so the hot-pair entries that dominate Zipf-skewed traffic survive
most batches.  Totals stay bit-identical to the uncached loops (costs
accumulate in stream order and each cached distance equals the recomputed
one), asserted in ``tests/test_vnet.py``.

``run_stream(trace_every=…)`` additionally records the learner's migration
swaps as a downsampled :class:`~repro.telemetry.trace.CostTrace` (one event
per ``trace_every`` reveals, exact totals), so datacenter-scale runs can be
archived in the run store and banded by ``python -m repro runs report``
like the core experiments.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.workloads.base import RequestStream

from repro.core.algorithm import OnlineMinLAAlgorithm
from repro.core.cost import CostLedger
from repro.core.opt import offline_optimum_bounds
from repro.core.instance import OnlineMinLAInstance
from repro.errors import EmbeddingError
from repro.graphs.components import DisjointSetForest
from repro.graphs.line_forest import LineForest
from repro.graphs.reveal import GraphKind, RevealStep
from repro.telemetry.trace import CostTrace, TraceRecorder
from repro.vnet.distance_cache import SlotDistanceCache
from repro.vnet.embedding import Embedding
from repro.vnet.topology import LinearDatacenter
from repro.vnet.traffic import TrafficTrace


@dataclass(frozen=True)
class ControllerReport:
    """Cost summary of one controller run over one traffic trace."""

    controller_name: str
    num_requests: int
    migration_cost: float
    communication_cost: float
    migration_ledger: Optional[CostLedger] = None
    """Per-update migration swaps with their moving/rearranging phase split.

    ``None`` for controllers without per-update accounting (the static
    controller never migrates; the oracle performs one offline jump).
    """
    migration_cost_per_swap: float = 1.0
    """The datacenter's price per adjacent swap (scales the ledger totals)."""
    num_reveals: int = 0
    """Requests that revealed a new piece of the hidden pattern."""
    num_batches: int = 0
    """Batches consumed by a streamed run (0 for materialized runs)."""
    trace: Optional[CostTrace] = None
    """Downsampled migration-swap trace of a streamed run (``None`` unless
    ``run_stream`` was called with ``trace_every``); its exact totals equal
    the migration ledger's, so the run store can band datacenter runs."""

    @property
    def total_cost(self) -> float:
        """Migration plus communication cost."""
        return self.migration_cost + self.communication_cost

    @property
    def moving_migration_cost(self) -> float:
        """Migration cost attributed to moving phases (ledger-backed)."""
        if self.migration_ledger is None:
            return self.migration_cost
        return self.migration_ledger.total_moving_cost * self.migration_cost_per_swap

    @property
    def rearranging_migration_cost(self) -> float:
        """Migration cost attributed to rearranging phases (ledger-backed)."""
        if self.migration_ledger is None:
            return 0.0
        return (
            self.migration_ledger.total_rearranging_cost * self.migration_cost_per_swap
        )


class StaticController:
    """Never migrate: serve all traffic on the initial embedding."""

    name = "static-embedding"

    def __init__(self, datacenter: LinearDatacenter) -> None:
        self._datacenter = datacenter

    def run(
        self,
        trace: TrafficTrace,
        initial_embedding: Optional[Embedding] = None,
        rng: Optional[random.Random] = None,
    ) -> ControllerReport:
        """Replay the trace without ever moving a virtual node."""
        embedding = _default_embedding(self._datacenter, trace, initial_embedding)
        communication = embedding.communication_cost(trace.requests)
        return ControllerReport(
            controller_name=self.name,
            num_requests=trace.num_requests,
            migration_cost=0.0,
            communication_cost=communication,
            migration_ledger=CostLedger(),
            migration_cost_per_swap=self._datacenter.migration_cost_per_swap,
        )

    def run_stream(
        self,
        stream: "RequestStream",
        initial_embedding: Optional[Embedding] = None,
        rng: Optional[random.Random] = None,
        batch_size: int = 1024,
    ) -> ControllerReport:
        """Replay a lazy request stream without ever moving a virtual node.

        Peak memory is bounded by ``batch_size`` plus a per-tenant-pair
        distance cache: the static embedding never changes, so the slot
        distance of a communicating pair is computed once on first sight and
        reused for every repeat — under Zipf-skewed datacenter traffic a few
        hot pairs carry most requests, which is exactly where the per-request
        slot lookups used to dominate this loop.  The cache holds one float
        per *distinct* pair (bounded by the hidden pattern's edge set, not
        the stream length), and the cost accumulates in stream order, so the
        total is bit-identical to the uncached loop.
        """
        embedding = _default_embedding(self._datacenter, stream, initial_embedding)
        cache = SlotDistanceCache(embedding)
        communication = 0.0
        num_requests = 0
        num_batches = 0
        for batch in stream.batches(batch_size):
            for u, v in batch:
                communication += cache.cost(u, v)
            num_requests += len(batch)
            num_batches += 1
        return ControllerReport(
            controller_name=self.name,
            num_requests=num_requests,
            migration_cost=0.0,
            communication_cost=communication,
            migration_ledger=CostLedger(),
            migration_cost_per_swap=self._datacenter.migration_cost_per_swap,
            num_batches=num_batches,
        )


class OracleController:
    """Offline yardstick: jump once to the best final embedding, then stay."""

    name = "oracle-embedding"

    def __init__(self, datacenter: LinearDatacenter) -> None:
        self._datacenter = datacenter

    def run(
        self,
        trace: TrafficTrace,
        initial_embedding: Optional[Embedding] = None,
        rng: Optional[random.Random] = None,
    ) -> ControllerReport:
        """Migrate to the single-jump offline target before any traffic flows."""
        embedding = _default_embedding(self._datacenter, trace, initial_embedding)
        instance = OnlineMinLAInstance(trace.sequence, embedding.arrangement)
        bounds = offline_optimum_bounds(instance)
        target = embedding.with_arrangement(bounds.upper_arrangement)
        migration = embedding.migration_cost_to(target)
        communication = target.communication_cost(trace.requests)
        return ControllerReport(
            controller_name=self.name,
            num_requests=trace.num_requests,
            migration_cost=migration,
            communication_cost=communication,
        )


class DemandAwareController:
    """Online re-embedding driven by a learning MinLA algorithm."""

    def __init__(
        self,
        datacenter: LinearDatacenter,
        learner_factory: Callable[[], OnlineMinLAAlgorithm],
        name: Optional[str] = None,
    ) -> None:
        self._datacenter = datacenter
        self._learner_factory = learner_factory
        self.name = name or "demand-aware-embedding"

    def run(
        self,
        trace: TrafficTrace,
        initial_embedding: Optional[Embedding] = None,
        rng: Optional[random.Random] = None,
    ) -> ControllerReport:
        """Replay the trace, migrating whenever the learner reacts to a reveal."""
        embedding = _default_embedding(self._datacenter, trace, initial_embedding)
        learner = self._learner_factory()
        learner.reset(
            nodes=list(trace.virtual_nodes),
            kind=trace.kind,
            initial_arrangement=embedding.arrangement,
            rng=rng if rng is not None else random.Random(0),
        )
        components = DisjointSetForest(trace.virtual_nodes)
        line_view = (
            LineForest(trace.virtual_nodes) if trace.kind is GraphKind.LINES else None
        )
        ledger = CostLedger()
        communication = 0.0
        for u, v in trace.requests:
            if not components.connected(u, v):
                if line_view is not None:
                    line_view.add_edge(u, v)
                ledger.add(learner.process(RevealStep(u, v)))
                components.union(u, v)
                embedding = embedding.with_arrangement(learner.current_arrangement)
            communication += embedding.communication_cost([(u, v)])
        return ControllerReport(
            controller_name=self.name,
            num_requests=trace.num_requests,
            migration_cost=self._datacenter.migration_cost(ledger.total_cost),
            communication_cost=communication,
            migration_ledger=ledger,
            migration_cost_per_swap=self._datacenter.migration_cost_per_swap,
            num_reveals=len(ledger),
        )

    def run_stream(
        self,
        stream: "RequestStream",
        initial_embedding: Optional[Embedding] = None,
        rng: Optional[random.Random] = None,
        batch_size: int = 1024,
        trace_every: Optional[int] = None,
    ) -> ControllerReport:
        """Replay a lazy request stream with **batched** embedding updates.

        Requests are consumed in batches of ``batch_size``; reveals detected
        inside a batch are fed to the learner immediately (its swap
        accounting is identical to :meth:`run`), but the embedding's slot
        maps — ``O(n)`` to rebuild — are refreshed only once per batch, so
        requests are served on the embedding as of the batch start.  Peak
        memory is bounded by the batch size plus the ``O(n)`` pattern state;
        the request list is never materialized.

        Per-pair slot distances are cached across batches and invalidated
        *incrementally*: a batched re-embedding evicts only the entries
        whose endpoints moved, so hot pairs keep their cached distance
        across the many batches that migrate other tenants.  The cost
        accumulation order matches the uncached loop exactly, so totals are
        bit-identical.

        ``trace_every`` (when set) records the learner's updates as a
        downsampled :class:`~repro.telemetry.trace.CostTrace` on the report
        (one event per ``trace_every`` reveals; totals stay exact and equal
        the migration ledger's swap totals).
        """
        if stream.kind is None:
            raise EmbeddingError(
                "the demand-aware controller needs a kind-pure stream "
                "(all tenant cliques or all pipelines)"
            )
        embedding = _default_embedding(self._datacenter, stream, initial_embedding)
        learner = self._learner_factory()
        learner.reset(
            nodes=list(stream.virtual_nodes),
            kind=stream.kind,
            initial_arrangement=embedding.arrangement,
            rng=rng if rng is not None else random.Random(0),
        )
        components = DisjointSetForest(stream.virtual_nodes)
        line_view = (
            LineForest(stream.virtual_nodes) if stream.kind is GraphKind.LINES else None
        )
        ledger = CostLedger()
        recorder = TraceRecorder(every=trace_every) if trace_every is not None else None
        cache = SlotDistanceCache(embedding)
        communication = 0.0
        num_requests = 0
        num_batches = 0
        for batch in stream.batches(batch_size):
            # Same accumulation order as the uncached
            # ``embedding.communication_cost(batch)`` loop: a per-batch
            # subtotal built left to right, added once per batch.
            batch_cost = 0.0
            for u, v in batch:
                batch_cost += cache.cost(u, v)
            communication += batch_cost
            num_requests += len(batch)
            num_batches += 1
            revealed_in_batch = False
            for u, v in batch:
                if not components.connected(u, v):
                    if line_view is not None:
                        line_view.add_edge(u, v)
                    record = learner.process(RevealStep(u, v))
                    ledger.add(record)
                    if recorder is not None:
                        recorder.record_update(record)
                    components.union(u, v)
                    revealed_in_batch = True
            if revealed_in_batch:
                embedding = embedding.with_arrangement(learner.current_arrangement)
                cache.rebind(embedding)
        return ControllerReport(
            controller_name=self.name,
            num_requests=num_requests,
            migration_cost=self._datacenter.migration_cost(ledger.total_cost),
            communication_cost=communication,
            migration_ledger=ledger,
            migration_cost_per_swap=self._datacenter.migration_cost_per_swap,
            num_reveals=len(ledger),
            num_batches=num_batches,
            trace=recorder.as_trace() if recorder is not None else None,
        )


def _default_embedding(
    datacenter: LinearDatacenter,
    workload,
    initial_embedding: Optional[Embedding],
) -> Embedding:
    """Validate a provided embedding or build the canonical initial one.

    ``workload`` is anything carrying ``virtual_nodes`` / ``num_nodes`` — a
    materialized :class:`~repro.vnet.traffic.TrafficTrace` or a lazy
    :class:`~repro.workloads.base.RequestStream`.
    """
    if initial_embedding is not None:
        if initial_embedding.datacenter != datacenter:
            raise EmbeddingError("the provided embedding uses a different datacenter")
        if initial_embedding.arrangement.nodes != frozenset(workload.virtual_nodes):
            raise EmbeddingError("the provided embedding does not cover the trace's nodes")
        return initial_embedding
    if datacenter.num_slots != workload.num_nodes:
        raise EmbeddingError(
            f"the datacenter has {datacenter.num_slots} slots but the trace uses "
            f"{workload.num_nodes} virtual nodes"
        )
    return Embedding.initial(datacenter, workload.virtual_nodes)
