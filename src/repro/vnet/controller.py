"""Embedding controllers: demand-aware, static and oracle.

The case study of experiment E10 compares three ways of placing virtual
nodes on the linear datacenter while a traffic trace plays out:

* :class:`StaticController` — keep the initial embedding forever (no
  migration cost, full communication cost),
* :class:`OracleController` — an offline yardstick that knows the final
  communication pattern, migrates once to the MinLA embedding closest to the
  initial one, and then never moves,
* :class:`DemandAwareController` — the paper's approach: run an online
  learning MinLA algorithm; whenever the trace reveals a new piece of the
  pattern (two previously separate components communicate for the first
  time) the learner migrates VMs, otherwise requests are served in place.

Every controller returns a :class:`ControllerReport` with the migration and
communication cost split, so the trade-off the paper motivates (migrate more
to communicate less) can be read off directly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.algorithm import OnlineMinLAAlgorithm
from repro.core.opt import offline_optimum_bounds
from repro.core.instance import OnlineMinLAInstance
from repro.errors import EmbeddingError
from repro.graphs.components import DisjointSetForest
from repro.graphs.line_forest import LineForest
from repro.graphs.reveal import GraphKind, RevealStep
from repro.vnet.embedding import Embedding
from repro.vnet.topology import LinearDatacenter
from repro.vnet.traffic import TrafficTrace


@dataclass(frozen=True)
class ControllerReport:
    """Cost summary of one controller run over one traffic trace."""

    controller_name: str
    num_requests: int
    migration_cost: float
    communication_cost: float

    @property
    def total_cost(self) -> float:
        """Migration plus communication cost."""
        return self.migration_cost + self.communication_cost


class StaticController:
    """Never migrate: serve all traffic on the initial embedding."""

    name = "static-embedding"

    def __init__(self, datacenter: LinearDatacenter) -> None:
        self._datacenter = datacenter

    def run(
        self,
        trace: TrafficTrace,
        initial_embedding: Optional[Embedding] = None,
        rng: Optional[random.Random] = None,
    ) -> ControllerReport:
        """Replay the trace without ever moving a virtual node."""
        embedding = _default_embedding(self._datacenter, trace, initial_embedding)
        communication = embedding.communication_cost(trace.requests)
        return ControllerReport(
            controller_name=self.name,
            num_requests=trace.num_requests,
            migration_cost=0.0,
            communication_cost=communication,
        )


class OracleController:
    """Offline yardstick: jump once to the best final embedding, then stay."""

    name = "oracle-embedding"

    def __init__(self, datacenter: LinearDatacenter) -> None:
        self._datacenter = datacenter

    def run(
        self,
        trace: TrafficTrace,
        initial_embedding: Optional[Embedding] = None,
        rng: Optional[random.Random] = None,
    ) -> ControllerReport:
        """Migrate to the single-jump offline target before any traffic flows."""
        embedding = _default_embedding(self._datacenter, trace, initial_embedding)
        instance = OnlineMinLAInstance(trace.sequence, embedding.arrangement)
        bounds = offline_optimum_bounds(instance)
        target = embedding.with_arrangement(bounds.upper_arrangement)
        migration = embedding.migration_cost_to(target)
        communication = target.communication_cost(trace.requests)
        return ControllerReport(
            controller_name=self.name,
            num_requests=trace.num_requests,
            migration_cost=migration,
            communication_cost=communication,
        )


class DemandAwareController:
    """Online re-embedding driven by a learning MinLA algorithm."""

    def __init__(
        self,
        datacenter: LinearDatacenter,
        learner_factory: Callable[[], OnlineMinLAAlgorithm],
        name: Optional[str] = None,
    ) -> None:
        self._datacenter = datacenter
        self._learner_factory = learner_factory
        self.name = name or "demand-aware-embedding"

    def run(
        self,
        trace: TrafficTrace,
        initial_embedding: Optional[Embedding] = None,
        rng: Optional[random.Random] = None,
    ) -> ControllerReport:
        """Replay the trace, migrating whenever the learner reacts to a reveal."""
        embedding = _default_embedding(self._datacenter, trace, initial_embedding)
        learner = self._learner_factory()
        learner.reset(
            nodes=list(trace.virtual_nodes),
            kind=trace.kind,
            initial_arrangement=embedding.arrangement,
            rng=rng if rng is not None else random.Random(0),
        )
        components = DisjointSetForest(trace.virtual_nodes)
        line_view = (
            LineForest(trace.virtual_nodes) if trace.kind is GraphKind.LINES else None
        )
        migration_swaps = 0
        communication = 0.0
        for u, v in trace.requests:
            if not components.connected(u, v):
                if line_view is not None:
                    line_view.add_edge(u, v)
                record = learner.process(RevealStep(u, v))
                migration_swaps += record.total_cost
                components.union(u, v)
                embedding = embedding.with_arrangement(learner.current_arrangement)
            communication += embedding.communication_cost([(u, v)])
        return ControllerReport(
            controller_name=self.name,
            num_requests=trace.num_requests,
            migration_cost=self._datacenter.migration_cost(migration_swaps),
            communication_cost=communication,
        )


def _default_embedding(
    datacenter: LinearDatacenter,
    trace: TrafficTrace,
    initial_embedding: Optional[Embedding],
) -> Embedding:
    """Validate a provided embedding or build the canonical initial one."""
    if initial_embedding is not None:
        if initial_embedding.datacenter != datacenter:
            raise EmbeddingError("the provided embedding uses a different datacenter")
        if initial_embedding.arrangement.nodes != frozenset(trace.virtual_nodes):
            raise EmbeddingError("the provided embedding does not cover the trace's nodes")
        return initial_embedding
    if datacenter.num_slots != trace.num_nodes:
        raise EmbeddingError(
            f"the datacenter has {datacenter.num_slots} slots but the trace uses "
            f"{trace.num_nodes} virtual nodes"
        )
    return Embedding.initial(datacenter, trace.virtual_nodes)
