"""Physical topology model for the virtual network embedding case study.

Section 1.2 of the paper motivates online learning MinLA with dynamic virtual
network embedding: virtual nodes (VMs, containers, tenant endpoints) are
placed on a physical *line* topology — a rack of hosts, a linear optical
bus, or the linearised view of any topology where communication cost grows
with the distance between slots — and can be migrated at a cost while the
communication pattern is only learned over time.

This module models that physical substrate:

* a :class:`LinearDatacenter` with ``num_slots`` equally spaced slots,
* per-hop communication cost and per-swap migration cost factors, so the
  case study can translate "swaps" and "stretch" into the same currency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List

from repro.errors import EmbeddingError


@dataclass(frozen=True)
class LinearDatacenter:
    """A line of physical hosts, one virtual node per host slot.

    Attributes
    ----------
    num_slots:
        Number of physical slots (hosts); slots are indexed ``0 … num_slots-1``.
    communication_cost_per_hop:
        Cost charged for each hop a message travels between two slots.
    migration_cost_per_swap:
        Cost charged for exchanging the VMs of two *adjacent* slots — the
        physical counterpart of one adjacent transposition in the arrangement.
    """

    num_slots: int
    communication_cost_per_hop: float = 1.0
    migration_cost_per_swap: float = 1.0

    def __post_init__(self) -> None:
        if self.num_slots < 1:
            raise EmbeddingError("a datacenter needs at least one slot")
        if self.communication_cost_per_hop < 0 or self.migration_cost_per_swap < 0:
            raise EmbeddingError("cost factors must be non-negative")

    @property
    def slots(self) -> List[int]:
        """The slot indices ``0 … num_slots-1``."""
        return list(range(self.num_slots))

    def __iter__(self) -> Iterator[int]:
        return iter(range(self.num_slots))

    def distance(self, first_slot: int, second_slot: int) -> int:
        """Number of hops between two slots."""
        self._check_slot(first_slot)
        self._check_slot(second_slot)
        return abs(first_slot - second_slot)

    def communication_cost(self, first_slot: int, second_slot: int) -> float:
        """Cost of one message exchanged between the two slots."""
        return self.distance(first_slot, second_slot) * self.communication_cost_per_hop

    def migration_cost(self, num_swaps: int) -> float:
        """Cost of performing ``num_swaps`` adjacent VM exchanges."""
        if num_swaps < 0:
            raise EmbeddingError("the number of swaps cannot be negative")
        return num_swaps * self.migration_cost_per_swap

    def _check_slot(self, slot: int) -> None:
        if not 0 <= slot < self.num_slots:
            raise EmbeddingError(
                f"slot {slot} is outside the datacenter (0 … {self.num_slots - 1})"
            )
