"""Virtual network embedding case-study substrate (Section 1.2 motivation)."""

from repro.vnet.controller import (
    ControllerReport,
    DemandAwareController,
    OracleController,
    StaticController,
)
from repro.vnet.distance_cache import SlotDistanceCache
from repro.vnet.embedding import Embedding
from repro.vnet.topology import LinearDatacenter
from repro.vnet.traffic import TrafficTrace, pipeline_traffic, tenant_traffic

__all__ = [
    "ControllerReport",
    "DemandAwareController",
    "Embedding",
    "LinearDatacenter",
    "OracleController",
    "SlotDistanceCache",
    "StaticController",
    "TrafficTrace",
    "pipeline_traffic",
    "tenant_traffic",
]
