"""Command-line interface of the :mod:`repro` library.

The CLI makes the common workflows available without writing Python:

``python -m repro simulate``
    Generate a random clique or line workload, run one of the online
    algorithms on it (optionally averaged over trials) and report the cost
    against the certified offline-optimum bracket and the paper's bound.

``python -m repro adversary``
    Run one of the Section 5 lower-bound constructions (the adaptive line
    adversary of Theorem 16 or the binary-tree distribution of Theorem 15)
    against a chosen algorithm, or a worst-of-k random search
    (``--construction random``), optionally sharded over worker processes
    with ``--jobs N``.

``python -m repro profile``
    Print the structural profile of a generated workload: merge profile of
    the worst node, harmonic-budget utilization, component statistics.

``python -m repro experiments``
    Run the E1–E15 suite and regenerate ``EXPERIMENTS.md`` (thin wrapper
    around :mod:`repro.experiments.suite`).

``python -m repro scenarios``
    Browse and exercise the workload registry: ``scenarios list`` prints
    the catalog, ``scenarios run`` generates one scenario (or ``--all``) at
    a chosen scale, replays the reveal view through the matching learner
    and consumes the request stream in batches.  The ``REPRO_SCENARIO``
    environment variable pre-selects a scenario (validated against the
    registry).

``python -m repro serve``
    Boot the arrangement-serving subsystem (:mod:`repro.service`)
    in-process for one registered scenario and replay its full request
    stream through the sharded workers at maximum speed, printing the
    throughput/latency/cost summary — the quickest way to see a deployment
    configuration serve.

``python -m repro loadgen``
    Drive a freshly booted service with generated load: open-loop Poisson
    arrivals (``--mode open --rate R``), a closed-loop concurrency window
    (``--mode closed --concurrency C``) or a full-speed replay (the
    default).  Reports throughput and p50/p95/p99 latency and archives the
    summary in the run store (``--no-store`` to opt out).  By default the
    percentiles come from the fleet's fixed-bucket histograms at O(1)
    memory; ``--retain-requests`` keeps every result for exact
    percentiles.  ``--soak --duration S`` (or ``--max-requests N``)
    streams the scenario in cycles indefinitely, checkpointing RSS and
    tail latency.  Both serve and loadgen accept ``--stats-interval N``
    (live one-line fleet snapshots), ``--trace-sample-rate``/
    ``--trace-out`` (sampled span traces as JSONL) and ``--metrics-out``/
    ``--metrics-jsonl`` (Prometheus-text / JSONL metrics exports).

``python -m repro perf``
    The perf trajectory workflow (:mod:`repro.obs.profile`): ``perf run``
    executes one experiment (or replays one scenario) under the
    hierarchical zone profiler and prints the zone table plus the run's
    deterministic work counters (``--format json`` for machines,
    ``--flame PATH`` for a collapsed-stack flamegraph/speedscope export);
    experiment runs archive their counters and profile snapshot in the run
    store.  ``perf diff`` compares two archived runs: work counters are
    gated at exactly zero drift (non-zero exit code), wall time is
    reported as a ratio.

``python -m repro runs``
    Work with the persistent run archive (:mod:`repro.runstore`):
    ``runs list`` and ``runs show`` inspect stored runs, ``runs report``
    renders cross-run variance bands on costs and harmonic slopes,
    ``runs export-bands`` writes the same per-phase bands as CSV files
    under ``results/``, ``runs compare`` diffs two store snapshots and
    flags cost/wall-time regressions beyond a tolerance (non-zero exit
    code on regressions, so CI can gate on it), and ``runs gc`` prunes the
    archive.  The archive location defaults to ``.repro-runs`` and is
    overridden by ``REPRO_RUNSTORE`` or ``--store``.

``python -m repro analyze``
    Run the static determinism/thread-safety checker
    (:mod:`repro.analysis`) over a source tree (the installed ``repro``
    package by default): seeded-randomness, wall-clock-taint, ordered
    iteration, lock-discipline, bounded-queue and public-annotation rules,
    with per-line ``# repro: allow[rule] — reason`` suppressions and a
    ``--baseline`` ratchet.  Exits non-zero on unsuppressed findings, so
    CI gates on it.

Scenario recipes in a ``.repro-scenarios.toml`` file in the working
directory are discovered at startup and registered next to the built-ins,
so they appear in ``scenarios list`` and are swept by E11.
"""

from __future__ import annotations

import argparse
import random
from typing import Callable, Dict, List, Optional

from repro.adversary.line_adversary import run_line_adversary
from repro.analysis.cli import add_analyze_arguments, command_analyze
from repro.adversary.random_adversary import worst_of_k_search
from repro.adversary.tree_adversary import tree_adversary_instance
from repro.core.algorithm import OnlineMinLAAlgorithm
from repro.core.analysis import instance_profile, worst_harmonic_certificate
from repro.core.bounds import (
    det_competitive_bound,
    rand_cliques_ratio_bound,
    rand_lines_ratio_bound,
)
from repro.core.det import DeterministicClosestLearner, GreedyClosestLearner
from repro.core.instance import OnlineMinLAInstance
from repro.core.opt import offline_optimum_bounds
from repro.core.rand_cliques import (
    MoveSmallerCliqueLearner,
    RandomizedCliqueLearner,
    UnbiasedCoinCliqueLearner,
)
from repro.core.rand_lines import (
    MoveSmallerLineLearner,
    RandomizedLineLearner,
    UnbiasedCoinLineLearner,
)
from repro.core.simulator import run_trials
from repro.errors import ReproError
from repro.experiments import suite as experiments_suite
from repro.graphs.generators import random_clique_merge_sequence, random_line_sequence
from repro.graphs.reveal import GraphKind

AlgorithmFactory = Callable[[], OnlineMinLAAlgorithm]

_ALGORITHMS: Dict[GraphKind, Dict[str, AlgorithmFactory]] = {
    GraphKind.CLIQUES: {
        "rand": RandomizedCliqueLearner,
        "unbiased": UnbiasedCoinCliqueLearner,
        "move-smaller": MoveSmallerCliqueLearner,
        "det": DeterministicClosestLearner,
        "det-greedy": GreedyClosestLearner,
    },
    GraphKind.LINES: {
        "rand": RandomizedLineLearner,
        "unbiased": UnbiasedCoinLineLearner,
        "move-smaller": MoveSmallerLineLearner,
        "det": DeterministicClosestLearner,
        "det-greedy": GreedyClosestLearner,
    },
}


def algorithm_factory(kind: GraphKind, name: str) -> AlgorithmFactory:
    """Resolve an algorithm name for the given graph kind."""
    try:
        return _ALGORITHMS[kind][name]
    except KeyError as exc:
        raise ReproError(
            f"unknown algorithm {name!r} for {kind.value}; "
            f"choose one of {sorted(_ALGORITHMS[kind])}"
        ) from exc


def _ratio_bound(kind: GraphKind, name: str, num_nodes: int) -> float:
    if name in ("det", "det-greedy"):
        return det_competitive_bound(num_nodes)
    if kind is GraphKind.CLIQUES:
        return rand_cliques_ratio_bound(num_nodes)
    return rand_lines_ratio_bound(num_nodes)


# ----------------------------------------------------------------------
# Sub-commands
# ----------------------------------------------------------------------
def command_simulate(arguments: argparse.Namespace) -> int:
    """The ``simulate`` sub-command."""
    kind = GraphKind(arguments.kind)
    rng = random.Random(arguments.seed)
    if kind is GraphKind.CLIQUES:
        sequence = random_clique_merge_sequence(
            arguments.nodes, rng, num_final_components=arguments.final_components
        )
    else:
        sequence = random_line_sequence(
            arguments.nodes, rng, num_final_components=arguments.final_components
        )
    instance = OnlineMinLAInstance.with_random_start(sequence, rng)
    opt = offline_optimum_bounds(instance)
    factory = algorithm_factory(kind, arguments.algorithm)
    results = run_trials(factory, instance, num_trials=arguments.trials, seed=arguments.seed)
    mean_cost = sum(result.total_cost for result in results) / len(results)
    denominator = max(opt.upper, 1)
    print(f"workload        : {kind.value}, n={arguments.nodes}, steps={instance.num_steps}")
    print(f"algorithm       : {arguments.algorithm} ({results[0].algorithm_name})")
    print(f"trials          : {arguments.trials}")
    print(f"mean cost       : {mean_cost:.1f} adjacent swaps")
    print(f"offline optimum : between {opt.lower} and {opt.upper}")
    print(f"empirical ratio : {mean_cost / denominator:.2f}")
    print(f"paper bound     : {_ratio_bound(kind, arguments.algorithm, arguments.nodes):.2f}")
    return 0


def command_adversary(arguments: argparse.Namespace) -> int:
    """The ``adversary`` sub-command."""
    if arguments.construction == "line":
        kind = GraphKind.LINES
        factory = algorithm_factory(kind, arguments.algorithm)
        result = run_line_adversary(
            factory(), arguments.nodes, rng=random.Random(arguments.seed)
        )
        print(f"Theorem 16 adversary, n={arguments.nodes}")
        print(f"algorithm       : {result.algorithm_name}")
        print(f"online cost     : {result.total_cost}")
        print(f"offline optimum : {result.opt_bounds.upper}")
        print(f"ratio           : {result.ratio_lower_estimate:.2f}")
        print(f"bound 2n-2      : {det_competitive_bound(arguments.nodes):.0f}")
        return 0
    if arguments.construction == "random":
        # Worst-of-k random search, sharded over worker processes.
        kind = GraphKind(arguments.kind)
        factory = algorithm_factory(kind, arguments.algorithm)
        result = worst_of_k_search(
            factory,
            kind,
            num_nodes=arguments.nodes,
            num_candidates=arguments.candidates,
            rng=random.Random(arguments.seed),
            trials_per_candidate=arguments.trials,
            jobs=arguments.jobs,
        )
        print(f"worst-of-{arguments.candidates} random search, {kind.value}, n={arguments.nodes}")
        print(f"algorithm       : {arguments.algorithm}")
        print(f"candidates      : {result.candidates_evaluated}")
        print(f"worst mean cost : {result.mean_cost:.1f}")
        print(f"offline optimum : between {result.opt_lower} and {result.opt_upper}")
        print(f"worst ratio     : {result.ratio:.2f}")
        print(f"paper bound     : {_ratio_bound(kind, arguments.algorithm, arguments.nodes):.2f}")
        return 0
    # Binary-tree distribution (Theorem 15).
    kind = GraphKind.LINES
    factory = algorithm_factory(kind, arguments.algorithm)
    rng = random.Random(arguments.seed)
    instance, _ = tree_adversary_instance(arguments.nodes, rng)
    opt = offline_optimum_bounds(instance)
    results = run_trials(
        factory,
        instance,
        num_trials=arguments.trials,
        seed=arguments.seed,
        jobs=arguments.jobs,
    )
    mean_cost = sum(result.total_cost for result in results) / len(results)
    print(f"Theorem 15 distribution, n={arguments.nodes}")
    print(f"algorithm       : {results[0].algorithm_name}")
    print(f"mean cost       : {mean_cost:.1f}")
    print(f"offline optimum : {opt.upper}")
    print(f"ratio           : {mean_cost / max(opt.upper, 1):.2f}")
    return 0


def command_profile(arguments: argparse.Namespace) -> int:
    """The ``profile`` sub-command."""
    kind = GraphKind(arguments.kind)
    rng = random.Random(arguments.seed)
    if kind is GraphKind.CLIQUES:
        sequence = random_clique_merge_sequence(
            arguments.nodes, rng, num_final_components=arguments.final_components
        )
    else:
        sequence = random_line_sequence(
            arguments.nodes, rng, num_final_components=arguments.final_components
        )
    instance = OnlineMinLAInstance.with_random_start(sequence, rng)
    profile = instance_profile(instance)
    certificate = worst_harmonic_certificate(sequence)
    print(f"workload profile ({kind.value}, n={arguments.nodes}, seed={arguments.seed})")
    for key, value in profile.items():
        print(f"  {key:<26} {value:.3f}")
    print(f"  worst node                 {certificate.node!r}")
    print(f"  its merge profile          {list(certificate.profile)}")
    print(f"  Lemma 5 sum                {certificate.lemma5_value:.3f}")
    print(f"  Lemma 13 sums              {certificate.lemma13_square_value:.3f} / "
          f"{certificate.lemma13_product_value:.3f}")
    print(f"  harmonic budget H_n        {certificate.harmonic_budget:.3f}")
    return 0


def command_scenarios(arguments: argparse.Namespace) -> int:
    """The ``scenarios`` sub-command (workload registry catalog and runner)."""
    from repro.core.simulator import run_online
    from repro.workloads import (
        all_scenarios,
        default_scenario_name,
        get_scenario,
        stream_statistics,
    )

    if arguments.action == "list":
        scenarios = all_scenarios()
        name_width = max(len(scenario.name) for scenario in scenarios)
        print(f"{len(scenarios)} registered scenarios:")
        for scenario in scenarios:
            print(
                f"  {scenario.name:<{name_width}}  {scenario.kind_label:<8}"
                f"{scenario.description}"
            )
        return 0

    # scenarios run
    if arguments.all:
        selected = all_scenarios()
    else:
        name = arguments.scenario or default_scenario_name()
        if name is None:
            raise ReproError(
                "scenarios run needs --scenario NAME, --all, or the "
                "REPRO_SCENARIO environment variable"
            )
        selected = [get_scenario(name)]
    for scenario in selected:
        params = scenario.default_params(arguments.scale)
        num_nodes = arguments.nodes if arguments.nodes is not None else params.num_nodes
        num_requests = (
            arguments.requests if arguments.requests is not None else params.num_requests
        )
        sequences = scenario.reveal_sequences(num_nodes, arguments.seed)
        print(f"{scenario.name} ({scenario.kind_label}): {scenario.description}")
        for sequence in sequences:
            instance = OnlineMinLAInstance.with_random_start(
                sequence, random.Random(f"{arguments.seed}|{scenario.name}|start")
            )
            factory = _ALGORITHMS[sequence.kind]["rand"]
            result = run_online(
                factory(),
                instance,
                rng=random.Random(f"{arguments.seed}|{scenario.name}|run"),
            )
            components = len(sequence.final_components())
            print(
                f"  reveal view : {sequence.kind.value}, n={sequence.num_nodes}, "
                f"steps={len(sequence)}, final components={components}, "
                f"rand cost={result.total_cost} swaps"
            )
        stream = scenario.request_stream(num_nodes, num_requests, arguments.seed)
        batch_size = min(arguments.batch, stream.num_requests)
        request_count, reveal_count = stream_statistics(stream, batch_size)
        reveal_note = "" if reveal_count is None else f", induced reveals={reveal_count}"
        print(
            f"  traffic view: n={stream.num_nodes}, requests={request_count} "
            f"(streamed in batches of {batch_size}{reveal_note})"
        )
    return 0


def _resolve_serving_workload(arguments: argparse.Namespace):
    """The (scenario, nodes, requests) triple of a serve/loadgen invocation."""
    from repro.workloads import default_scenario_name, get_scenario

    name = arguments.scenario or default_scenario_name()
    if name is None:
        raise ReproError(
            f"{arguments.command} needs --scenario NAME or the REPRO_SCENARIO "
            "environment variable"
        )
    scenario = get_scenario(name)
    params = scenario.default_params(arguments.scale)
    num_nodes = arguments.nodes if arguments.nodes is not None else params.num_nodes
    num_requests = (
        arguments.requests if arguments.requests is not None else params.num_requests
    )
    return scenario, num_nodes, num_requests


def _write_observability_exports(arguments, snapshot, worker_stats, span_traces) -> None:
    """Write the ``--metrics-out``/``--metrics-jsonl``/``--trace-out`` files."""
    from repro.obs import write_metrics_jsonl, write_prometheus_text, write_spans_jsonl
    from repro.service.observation import fleet_metrics

    metrics = fleet_metrics(snapshot, worker_stats)
    if arguments.metrics_out is not None:
        write_prometheus_text(arguments.metrics_out, metrics)
        print(f"wrote Prometheus-text metrics to {arguments.metrics_out}")
    if arguments.metrics_jsonl is not None:
        write_metrics_jsonl(arguments.metrics_jsonl, metrics)
        print(f"wrote metrics JSONL to {arguments.metrics_jsonl}")
    if arguments.trace_out is not None:
        write_spans_jsonl(arguments.trace_out, span_traces)
        print(
            f"wrote {len(span_traces)} sampled span trace(s) to "
            f"{arguments.trace_out}"
        )


def _drive_scenario(arguments: argparse.Namespace, mode: str):
    """Boot a deployment for the CLI arguments and drive it in ``mode``."""
    from repro.service import run_scenario_loadgen

    scenario, num_nodes, num_requests = _resolve_serving_workload(arguments)
    batch_timeout = (
        arguments.batch_timeout_ms / 1_000.0
        if arguments.batch_timeout_ms is not None
        else None
    )
    report = run_scenario_loadgen(
        scenario,
        num_nodes=num_nodes,
        num_requests=num_requests,
        seed=arguments.seed,
        num_shards=arguments.shards,
        learner=arguments.algorithm,
        batch_size=arguments.batch,
        batch_timeout=batch_timeout,
        queue_capacity=arguments.queue_capacity,
        mode=mode,
        rate=getattr(arguments, "rate", None),
        concurrency=getattr(arguments, "concurrency", 32),
        backend=arguments.backend,
        retain_requests=arguments.retain_requests,
        span_rate=arguments.trace_sample_rate,
        stats_interval=arguments.stats_interval,
    )
    print(
        f"{scenario.name} ({scenario.kind_label}): n={num_nodes}, "
        f"requests={num_requests}, shards={arguments.shards} "
        f"(effective {report.summary.num_shards}), batch={arguments.batch}, "
        f"mode={mode}, backend={report.backend}"
    )
    print(report.summary.to_text())
    balance = ", ".join(
        f"shard {shard}: {count}" for shard, count in report.shard_requests.items()
    )
    print(f"shard balance: {balance}")
    _write_observability_exports(
        arguments, report.snapshot, report.summary.shard_stats, report.span_traces
    )
    return report


def command_serve(arguments: argparse.Namespace) -> int:
    """The ``serve`` sub-command: boot a deployment and replay its scenario."""
    _drive_scenario(arguments, mode="replay")
    return 0


def _summary_tables(summary, title: str):
    """The run-store tables of one serving summary (histogram included)."""
    tables = [summary.to_table(title)]
    histogram_table = summary.latency_histogram_table(f"{title}: latency histogram")
    if histogram_table is not None:
        tables.append(histogram_table)
    return tuple(tables)


def _archive_serving_run(arguments, experiment_id: str, title: str, scenario: str,
                         summary, extra_findings=None) -> None:
    """Append one serving/soak summary to the persistent run store."""
    from repro.runstore import RunRecord, RunStore
    from repro.telemetry import get_backend

    findings = dict(summary.findings())
    findings.update(extra_findings or {})
    store = RunStore(arguments.store)
    run_id = store.append(
        RunRecord(
            experiment_id=experiment_id,
            title=title,
            scenario=scenario,
            scale=arguments.scale,
            seed=arguments.seed,
            backend=get_backend().name,
            jobs=arguments.shards,
            wall_time_seconds=summary.wall_seconds,
            tables=_summary_tables(summary, title),
            findings=findings,
        )
    )
    print(
        f"archived run {run_id} in {store.root} "
        "(inspect with python -m repro runs list)"
    )


def _run_soak(arguments: argparse.Namespace) -> int:
    """The ``loadgen --soak`` path: stream in cycles at O(1) memory."""
    from repro.service.loadgen import run_scenario_soak

    scenario, num_nodes, num_requests = _resolve_serving_workload(arguments)
    batch_timeout = (
        arguments.batch_timeout_ms / 1_000.0
        if arguments.batch_timeout_ms is not None
        else None
    )
    soak = run_scenario_soak(
        scenario,
        num_nodes=num_nodes,
        num_requests=num_requests,
        seed=arguments.seed,
        num_shards=arguments.shards,
        learner=arguments.algorithm,
        batch_size=arguments.batch,
        batch_timeout=batch_timeout,
        queue_capacity=arguments.queue_capacity,
        backend=arguments.backend,
        duration_seconds=arguments.duration,
        max_requests=arguments.max_requests,
        span_rate=arguments.trace_sample_rate,
        stats_interval=arguments.stats_interval,
    )
    print(soak.to_text())
    _write_observability_exports(
        arguments, soak.snapshot, soak.summary.shard_stats, soak.span_traces
    )
    if not arguments.no_store:
        extra = {"soak requests": float(soak.num_requests)}
        growth = soak.rss_growth()
        if growth is not None:
            extra["rss growth factor"] = growth
        _archive_serving_run(
            arguments,
            experiment_id="SOAK",
            title=f"soak {soak.scenario} ({soak.backend})",
            scenario=soak.scenario,
            summary=soak.summary,
            extra_findings=extra,
        )
    return 0


def command_loadgen(arguments: argparse.Namespace) -> int:
    """The ``loadgen`` sub-command: paced load against a fresh deployment."""
    if arguments.soak:
        return _run_soak(arguments)
    if arguments.duration is not None or arguments.max_requests is not None:
        raise ReproError(
            "--duration/--max-requests are soak horizons; add --soak"
        )
    report = _drive_scenario(arguments, mode=arguments.mode)
    if not arguments.no_store:
        _archive_serving_run(
            arguments,
            experiment_id="SERVE",
            title=f"loadgen {report.scenario} ({report.mode})",
            scenario=report.scenario,
            summary=report.summary,
        )
    return 0


def command_experiments(arguments: argparse.Namespace) -> int:
    """The ``experiments`` sub-command (delegates to the experiment suite CLI)."""
    forwarded: List[str] = ["--scale", arguments.scale, "--seed", str(arguments.seed)]
    if arguments.jobs is not None:
        forwarded += ["--jobs", str(arguments.jobs)]
    if arguments.only:
        forwarded += ["--only", *arguments.only]
    if arguments.output:
        forwarded += ["--output", arguments.output]
    if arguments.csv_dir:
        forwarded += ["--csv-dir", arguments.csv_dir]
    if arguments.store:
        forwarded += ["--store", arguments.store]
    if arguments.no_store:
        forwarded += ["--no-store"]
    return experiments_suite.main(forwarded)


def _perf_payload(label, arguments, snapshot, work, run_ids):
    """The machine-readable ``perf run --format json`` document."""
    return {
        "target": label,
        "scale": arguments.scale,
        "seed": arguments.seed,
        "jobs": arguments.jobs,
        "wall_seconds": snapshot.total_seconds(),
        "work": dict(sorted(work.items())),
        "zones": snapshot.to_json(),
        "archived_runs": list(run_ids),
    }


def _perf_run(arguments: argparse.Namespace) -> int:
    """The ``perf run`` action: profile one experiment or scenario."""
    import json as json_module

    from repro.experiments.runner import ExperimentScale
    from repro.experiments.suite import ALL_EXPERIMENTS
    from repro.obs.profile import (
        profile_zone,
        profiling,
        render_zone_table,
        work_delta,
        work_snapshot,
    )

    if not arguments.target:
        raise ReproError("perf run needs an experiment id or scenario name")
    experiment_id = (
        arguments.target.upper()
        if arguments.target.upper() in ALL_EXPERIMENTS
        else None
    )
    run_ids: List[str] = []
    before = work_snapshot()
    with profiling() as session:
        if experiment_id is not None:
            from repro.experiments.suite import run_all
            from repro.runstore import RunStore

            store = None if arguments.no_store else RunStore(arguments.store)
            preexisting = set(store.run_ids()) if store is not None else set()
            run_all(
                ExperimentScale(arguments.scale),
                seed=arguments.seed,
                only=[experiment_id],
                jobs=arguments.jobs,
                store=store,
            )
            if store is not None:
                run_ids = sorted(set(store.run_ids()) - preexisting)
            label = experiment_id
        else:
            from repro.service import run_scenario_loadgen
            from repro.workloads import get_scenario

            scenario = get_scenario(arguments.target)
            params = scenario.default_params(arguments.scale)
            with profile_zone("serve.replay"):
                run_scenario_loadgen(
                    scenario,
                    num_nodes=params.num_nodes,
                    num_requests=params.num_requests,
                    seed=arguments.seed,
                    num_shards=arguments.jobs or 1,
                    batch_size=8,
                    queue_capacity=params.num_requests,
                )
            label = scenario.name
    work = work_delta(before, work_snapshot())
    snapshot = session.snapshot()

    if arguments.flame is not None:
        lines = snapshot.collapsed_stack_lines()
        with open(arguments.flame, "w") as handle:
            handle.write("\n".join(lines) + ("\n" if lines else ""))

    if arguments.format == "json":
        print(
            json_module.dumps(
                _perf_payload(label, arguments, snapshot, work, run_ids),
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(
            f"perf run {label}: scale={arguments.scale} seed={arguments.seed} "
            f"jobs={arguments.jobs or 1}"
        )
        print()
        print(render_zone_table(snapshot))
        print()
        print("work counters (deterministic):")
        for name in sorted(work):
            print(f"  {name:<40} {work[name]}")
        if run_ids:
            print()
            print(
                f"archived {len(run_ids)} run(s) with counters and profile "
                "(inspect with python -m repro runs list, python -m repro perf diff)"
            )
    if arguments.flame is not None and arguments.format != "json":
        print(f"wrote collapsed-stack flame data to {arguments.flame}")
    return 0


def _perf_diff(arguments: argparse.Namespace) -> int:
    """The ``perf diff`` action: exact counter gate between two stored runs."""
    from repro.obs.profile import merge_profiles
    from repro.runstore import RunStore
    from repro.runstore.report import describe_run

    if not arguments.target or not arguments.run_b:
        raise ReproError("perf diff needs two run ids (see runs list)")
    store = RunStore(arguments.store)
    run_a = store.get(arguments.target)
    run_b = store.get(arguments.run_b)
    print(f"A: {describe_run(run_a)}")
    print(f"B: {describe_run(run_b)}")

    drifted: List[str] = []
    if run_a.work or run_b.work:
        print()
        print("work counters (deterministic; any difference is drift):")
        for name in sorted(set(run_a.work) | set(run_b.work)):
            a_value = run_a.work.get(name, 0)
            b_value = run_b.work.get(name, 0)
            marker = ""
            if a_value != b_value:
                drifted.append(name)
                marker = f"  DRIFT ({b_value - a_value:+d})"
            print(f"  {name:<40} {a_value:>12} {b_value:>12}{marker}")
    else:
        print("neither run archived work counters")

    if run_a.mean_timing is not None and run_b.mean_timing is not None:
        ratio = (
            run_b.mean_timing / run_a.mean_timing
            if run_a.mean_timing > 0
            else float("inf")
        )
        print()
        print(
            f"wall time: {run_a.mean_timing:.3f}s -> {run_b.mean_timing:.3f}s "
            f"(x{ratio:.3f}; timing is banded, not gated)"
        )

    if run_a.profiles and run_b.profiles:
        profile_a = merge_profiles(run_a.profiles)
        profile_b = merge_profiles(run_b.profiles)
        paths = sorted(
            {zone.path for zone in profile_a.zones}
            | {zone.path for zone in profile_b.zones}
        )
        print()
        print("zone cumulative seconds (mean over archived snapshots):")
        for path in paths:
            zone_a = profile_a.zone(*path)
            zone_b = profile_b.zone(*path)
            a_seconds = zone_a.cumulative_seconds.sum if zone_a else 0.0
            b_seconds = zone_b.cumulative_seconds.sum if zone_b else 0.0
            indent = "  " * len(path)
            print(f"  {indent}{path[-1]:<30} {a_seconds:>10.4f} {b_seconds:>10.4f}")

    if drifted:
        print()
        print(f"counter drift on {len(drifted)} counter(s): {', '.join(drifted)}")
        return 1
    return 0


def command_perf(arguments: argparse.Namespace) -> int:
    """The ``perf`` sub-command (work counters + zone profiler workflow)."""
    if arguments.action == "run":
        return _perf_run(arguments)
    return _perf_diff(arguments)


def command_runs(arguments: argparse.Namespace) -> int:
    """The ``runs`` sub-command (persistent run archive)."""
    from pathlib import Path

    from repro.experiments.charts import cost_trajectory_chart
    from repro.runstore import (
        RunStore,
        compare_stores,
        export_band_csvs,
        store_report,
    )
    from repro.runstore.report import describe_run

    store = RunStore(arguments.store)

    if arguments.action == "list":
        # Manifest-level summaries: listing cost stays proportional to the
        # run count, not to the archived trace bytes.
        runs = store.summaries(arguments.experiment)
        print(f"run store at {store.root}: {len(runs)} stored run(s)")
        for run in runs:
            print(f"  {describe_run(run)}")
        return 0

    if arguments.action == "show":
        if not arguments.run_id:
            raise ReproError("runs show needs a RUN_ID (see runs list)")
        run = store.get(arguments.run_id)
        print(describe_run(run))
        if run.findings:
            print("findings:")
            for key, value in run.findings.items():
                print(f"  {key}: {value:.3f}")
        for table in run.tables:
            print()
            print(table.to_ascii())
        if run.trace_samples:
            print()
            print("trace samples:")
            for sample in run.trace_samples:
                print(
                    f"  {sample.group} seed={sample.seed}: "
                    f"{cost_trajectory_chart(sample.trace)}"
                )
        return 0

    if arguments.action == "report":
        print(
            store_report(
                store,
                experiment_id=arguments.experiment,
                min_seeds=arguments.min_seeds,
            )
        )
        return 0

    if arguments.action == "export-bands":
        written = export_band_csvs(
            store,
            directory=Path(arguments.out),
            experiment_id=arguments.experiment,
            min_seeds=arguments.min_seeds,
        )
        if not written:
            print(
                f"no trace population reaches {arguments.min_seeds} seeds yet - "
                "archive more runs (e.g. python -m repro experiments) first"
            )
            return 0
        print(f"wrote {len(written)} band CSV file(s):")
        for path in written:
            print(f"  {path.as_posix()}")
        return 0

    if arguments.action == "compare":
        if not arguments.baseline:
            raise ReproError("runs compare needs --baseline PATH")
        baseline = RunStore(arguments.baseline)
        report = compare_stores(baseline, store, tolerance=arguments.tolerance)
        print(report.to_text())
        return 1 if report.has_regressions else 0

    # runs gc
    removed = store.gc(keep=arguments.keep)
    print(
        f"gc of {store.root}: removed {removed['staging']} staging "
        f"leftover(s), pruned {removed['runs']} run(s)"
    )
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------
def build_parser() -> argparse.ArgumentParser:
    """The top-level argument parser with all sub-commands."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Online learning MinLA of cliques and lines (ICDCS 2024 reproduction)",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    simulate = subparsers.add_parser("simulate", help="run an algorithm on a random workload")
    simulate.add_argument("--kind", choices=["cliques", "lines"], default="cliques")
    simulate.add_argument("--algorithm", default="rand")
    simulate.add_argument("--nodes", type=int, default=32)
    simulate.add_argument("--final-components", type=int, default=1)
    simulate.add_argument("--trials", type=int, default=10)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.set_defaults(handler=command_simulate)

    adversary = subparsers.add_parser(
        "adversary",
        help="run a Section 5 lower-bound construction or a worst-of-k random search",
    )
    adversary.add_argument("--construction", choices=["line", "tree", "random"], default="line")
    adversary.add_argument("--algorithm", default="det")
    adversary.add_argument("--kind", choices=["cliques", "lines"], default="cliques",
                           help="graph kind of the random-search candidates")
    adversary.add_argument("--nodes", type=int, default=21)
    adversary.add_argument("--candidates", type=int, default=20,
                           help="candidate instances for --construction random")
    adversary.add_argument("--trials", type=int, default=5)
    adversary.add_argument("--seed", type=int, default=0)
    adversary.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes to shard candidates/trials over "
        "(default: REPRO_JOBS, else 1)",
    )
    adversary.set_defaults(handler=command_adversary)

    profile = subparsers.add_parser("profile", help="print the structural profile of a workload")
    profile.add_argument("--kind", choices=["cliques", "lines"], default="cliques")
    profile.add_argument("--nodes", type=int, default=32)
    profile.add_argument("--final-components", type=int, default=1)
    profile.add_argument("--seed", type=int, default=0)
    profile.set_defaults(handler=command_profile)

    scenarios = subparsers.add_parser(
        "scenarios",
        help="browse and exercise the workload scenario registry",
    )
    scenarios.add_argument(
        "action",
        choices=["list", "run"],
        help="list the catalog, or generate and exercise scenarios",
    )
    scenarios.add_argument(
        "--scenario",
        default=None,
        help="scenario name for 'run' (default: REPRO_SCENARIO, else use --all)",
    )
    scenarios.add_argument(
        "--all", action="store_true", help="run every registered scenario"
    )
    scenarios.add_argument(
        "--scale",
        choices=["smoke", "bench", "full"],
        default="smoke",
        help="per-scenario default sizes (override with --nodes / --requests)",
    )
    scenarios.add_argument("--seed", type=int, default=0)
    scenarios.add_argument("--nodes", type=int, default=None,
                           help="node budget (default: the scenario's scale default)")
    scenarios.add_argument("--requests", type=int, default=None,
                           help="stream length (default: the scenario's scale default)")
    scenarios.add_argument("--batch", type=int, default=1024,
                           help="stream batch size (bounds peak memory)")
    scenarios.set_defaults(handler=command_scenarios)

    def add_service_arguments(parser: argparse.ArgumentParser) -> None:
        """Options shared by the ``serve`` and ``loadgen`` deployments."""
        parser.add_argument(
            "--scenario",
            default=None,
            help="registered scenario to serve (default: REPRO_SCENARIO)",
        )
        parser.add_argument(
            "--scale",
            choices=["smoke", "bench", "full"],
            default="smoke",
            help="per-scenario default sizes (override with --nodes / --requests)",
        )
        parser.add_argument("--nodes", type=int, default=None,
                            help="node budget (default: the scenario's scale default)")
        parser.add_argument("--requests", type=int, default=None,
                            help="request count (default: the scenario's scale default)")
        parser.add_argument("--seed", type=int, default=0)
        parser.add_argument("--shards", type=int, default=1,
                            help="worker shards (tenants are partitioned "
                            "deterministically across them)")
        parser.add_argument("--batch", type=int, default=1,
                            help="micro-batch size (requests coalesced into one "
                            "rearrangement pass)")
        parser.add_argument(
            "--batch-timeout-ms",
            type=float,
            default=None,
            help="cut a micro-batch early after this many milliseconds "
            "(default: wait for a full batch — deterministic cost totals)",
        )
        parser.add_argument("--queue-capacity", type=int, default=1024,
                            help="bounded per-shard queue size (backpressure limit)")
        parser.add_argument(
            "--algorithm",
            choices=["rand", "move-smaller", "det"],
            default="rand",
            help="online algorithm each shard serves with",
        )
        parser.add_argument(
            "--backend",
            choices=["thread", "process"],
            default=None,
            help="worker backend: threads (shared heap) or one process per "
            "shard with shared-memory arrangements "
            "(default: REPRO_SERVICE_BACKEND, else thread)",
        )
        parser.add_argument(
            "--stats-interval",
            type=float,
            default=None,
            metavar="SECONDS",
            help="print a live one-line fleet snapshot (throughput, "
            "histogram p50/p95/p99, queue peak, busy fraction) every "
            "SECONDS while the run drives",
        )
        parser.add_argument(
            "--retain-requests",
            action="store_true",
            help="keep every per-request result for exact percentiles "
            "(O(requests) memory; default: O(1) fixed-bucket histograms)",
        )
        parser.add_argument(
            "--trace-sample-rate",
            type=float,
            default=0.0,
            metavar="RATE",
            help="head-sample this fraction of requests (seeded, "
            "deterministic) into per-request span traces",
        )
        parser.add_argument(
            "--trace-out",
            default=None,
            metavar="PATH",
            help="write the sampled span traces as JSONL to PATH",
        )
        parser.add_argument(
            "--metrics-out",
            default=None,
            metavar="PATH",
            help="write the final fleet metrics in Prometheus text format "
            "to PATH",
        )
        parser.add_argument(
            "--metrics-jsonl",
            default=None,
            metavar="PATH",
            help="write the final fleet metrics as JSONL to PATH",
        )

    serve = subparsers.add_parser(
        "serve",
        help="boot the sharded serving subsystem and replay a scenario through it",
    )
    add_service_arguments(serve)
    serve.set_defaults(handler=command_serve)

    loadgen = subparsers.add_parser(
        "loadgen",
        help="generate load against a freshly booted service and report latency",
    )
    add_service_arguments(loadgen)
    loadgen.add_argument(
        "--mode",
        choices=["replay", "open", "closed"],
        default="replay",
        help="replay at full speed, open-loop Poisson arrivals, or a "
        "closed concurrency window",
    )
    loadgen.add_argument("--rate", type=float, default=None,
                         help="open-loop arrival rate in requests/second")
    loadgen.add_argument("--concurrency", type=int, default=32,
                         help="closed-loop outstanding-request window")
    loadgen.add_argument(
        "--soak", action="store_true",
        help="stream the scenario in cycles at O(1) memory until a "
        "--duration/--max-requests horizon is reached",
    )
    loadgen.add_argument(
        "--duration", type=float, default=None, metavar="SECONDS",
        help="soak horizon: stop submitting after this much wall time",
    )
    loadgen.add_argument(
        "--max-requests", type=int, default=None, metavar="N",
        help="soak horizon: stop after submitting N requests",
    )
    loadgen.add_argument(
        "--store",
        default=None,
        help="run-archive directory (default: REPRO_RUNSTORE, else .repro-runs)",
    )
    loadgen.add_argument(
        "--no-store", action="store_true",
        help="do not archive this run's latency summary",
    )
    loadgen.set_defaults(handler=command_loadgen)

    experiments = subparsers.add_parser("experiments", help="run the E1-E15 experiment suite")
    experiments.add_argument("--scale", choices=["smoke", "bench", "full"], default="bench")
    experiments.add_argument("--seed", type=int, default=0)
    experiments.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes for independent experiments (default: REPRO_JOBS, else 1)",
    )
    experiments.add_argument("--only", nargs="*", default=None)
    experiments.add_argument("--output", default=None)
    experiments.add_argument("--csv-dir", default=None,
                             help="directory for the per-table CSV files")
    experiments.add_argument(
        "--store",
        default=None,
        help="run-archive directory (default: REPRO_RUNSTORE, else .repro-runs)",
    )
    experiments.add_argument(
        "--no-store", action="store_true", help="do not archive this invocation's runs"
    )
    experiments.set_defaults(handler=command_experiments)

    perf = subparsers.add_parser(
        "perf",
        help="profile a run: zone profiler plus deterministic work counters",
    )
    perf.add_argument(
        "action",
        choices=["run", "diff"],
        help="profile one experiment/scenario, or diff two archived runs",
    )
    perf.add_argument(
        "target",
        nargs="?",
        default=None,
        help="experiment id (e.g. E2) or scenario name for 'run'; "
        "baseline run id for 'diff'",
    )
    perf.add_argument(
        "run_b",
        nargs="?",
        default=None,
        help="second run id for 'diff'",
    )
    perf.add_argument(
        "--scale", choices=["smoke", "bench", "full"], default="smoke"
    )
    perf.add_argument("--seed", type=int, default=0)
    perf.add_argument(
        "--jobs",
        type=int,
        default=None,
        help="worker processes (experiments) or shards (scenarios); "
        "counters are bit-identical for every value",
    )
    perf.add_argument(
        "--format",
        choices=["text", "json"],
        default="text",
        help="zone table + counters as text (default) or one JSON document",
    )
    perf.add_argument(
        "--flame",
        default=None,
        metavar="PATH",
        help="write the profile as collapsed stacks (flamegraph.pl / "
        "speedscope compatible) to PATH",
    )
    perf.add_argument(
        "--store",
        default=None,
        help="run-archive directory (default: REPRO_RUNSTORE, else .repro-runs)",
    )
    perf.add_argument(
        "--no-store",
        action="store_true",
        help="do not archive this invocation's counters and profile",
    )
    perf.set_defaults(handler=command_perf)

    runs = subparsers.add_parser(
        "runs",
        help="inspect and compare the persistent run archive",
    )
    runs.add_argument(
        "action",
        choices=["list", "show", "compare", "report", "export-bands", "gc"],
        help="list runs, show one run, compare two stores, render variance "
        "bands, export band CSVs, or prune the archive",
    )
    runs.add_argument("run_id", nargs="?", default=None,
                      help="run id for 'show' (see runs list)")
    runs.add_argument(
        "--store",
        default=None,
        help="archive directory (default: REPRO_RUNSTORE, else .repro-runs); "
        "for 'compare' this is the candidate store",
    )
    runs.add_argument(
        "--experiment",
        default=None,
        help="restrict 'list'/'report' to one experiment id (e.g. E2)",
    )
    runs.add_argument(
        "--min-seeds",
        type=int,
        default=3,
        help="seeds a trace population needs before 'report'/'export-bands' "
        "draw its bands",
    )
    runs.add_argument(
        "--out",
        default="results",
        help="directory 'export-bands' writes its per-phase band CSVs to",
    )
    runs.add_argument(
        "--baseline",
        default=None,
        help="baseline store directory for 'compare'",
    )
    runs.add_argument(
        "--tolerance",
        type=float,
        default=0.1,
        help="relative cost/wall-time change 'compare' tolerates before "
        "flagging a regression",
    )
    runs.add_argument(
        "--keep",
        type=int,
        default=None,
        help="for 'gc': keep only the newest N runs per configuration",
    )
    runs.set_defaults(handler=command_runs)

    analyze = subparsers.add_parser(
        "analyze",
        help="run the static determinism/thread-safety checks over the tree",
    )
    add_analyze_arguments(analyze)
    analyze.set_defaults(handler=command_analyze)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    from repro.workloads.discovery import autodiscover_scenarios

    parser = build_parser()
    arguments = parser.parse_args(argv)
    try:
        # User scenario recipes (.repro-scenarios.toml in the working
        # directory) join the registry before any command runs, so they are
        # listable, runnable and swept by E11 like built-ins.
        autodiscover_scenarios()
        return arguments.handler(arguments)
    except ReproError as error:
        parser.exit(2, f"error: {error}\n")
        return 2  # pragma: no cover - parser.exit raises SystemExit
