"""JSON serialization of workloads, instances and run results.

Reproducibility is easier when the exact workload an experiment used can be
archived next to its results.  This module serializes the library's core
objects to plain JSON-compatible dictionaries (and back):

* reveal sequences (node universe, kind, steps),
* full instances (sequence + initial permutation),
* simulation results (algorithm name, per-step cost records, final
  arrangement).

Node labels must themselves be JSON-representable (integers or strings); the
generators in :mod:`repro.graphs.generators` use integers, and the virtual
network case study uses integers or short strings, so this covers every
object the library creates.  Round-tripping is validated in the test suite.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, Union

from repro.core.cost import CostLedger, SimulationResult, UpdateRecord
from repro.core.instance import OnlineMinLAInstance
from repro.core.permutation import Arrangement
from repro.errors import ReproError
from repro.graphs.reveal import (
    CliqueRevealSequence,
    GraphKind,
    LineRevealSequence,
    RevealSequence,
    RevealStep,
)

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# Reveal sequences
# ----------------------------------------------------------------------
def sequence_to_dict(sequence: RevealSequence) -> Dict[str, Any]:
    """A JSON-compatible description of a reveal sequence."""
    return {
        "kind": sequence.kind.value,
        "nodes": list(sequence.nodes),
        "steps": [[step.u, step.v] for step in sequence.steps],
    }


def sequence_from_dict(data: Dict[str, Any]) -> RevealSequence:
    """Rebuild (and re-validate) a reveal sequence from its dictionary form."""
    try:
        kind = GraphKind(data["kind"])
        nodes = data["nodes"]
        steps = [RevealStep(u, v) for u, v in data["steps"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"malformed reveal sequence payload: {exc}") from exc
    if kind is GraphKind.CLIQUES:
        return CliqueRevealSequence(nodes, steps)
    return LineRevealSequence(nodes, steps)


# ----------------------------------------------------------------------
# Instances
# ----------------------------------------------------------------------
def instance_to_dict(instance: OnlineMinLAInstance) -> Dict[str, Any]:
    """A JSON-compatible description of an instance (sequence + π0)."""
    return {
        "sequence": sequence_to_dict(instance.sequence),
        "initial_arrangement": list(instance.initial_arrangement.order),
    }


def instance_from_dict(data: Dict[str, Any]) -> OnlineMinLAInstance:
    """Rebuild an instance from its dictionary form."""
    try:
        sequence = sequence_from_dict(data["sequence"])
        initial = Arrangement(data["initial_arrangement"])
    except (KeyError, TypeError) as exc:
        raise ReproError(f"malformed instance payload: {exc}") from exc
    return OnlineMinLAInstance(sequence, initial)


# ----------------------------------------------------------------------
# Simulation results
# ----------------------------------------------------------------------
def result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    """A JSON-compatible summary of a simulation result.

    The full trajectory (if recorded) is intentionally not serialized — it
    can be regenerated from the instance, the algorithm and the seed; only
    the per-step cost records and the final arrangement are kept.
    """
    return {
        "algorithm": result.algorithm_name,
        "final_arrangement": list(result.final_arrangement.order),
        "records": [
            {
                "step_index": record.step_index,
                "step": [record.step.u, record.step.v],
                "moving_cost": record.moving_cost,
                "rearranging_cost": record.rearranging_cost,
                "kendall_tau": record.kendall_tau,
            }
            for record in result.ledger
        ],
        "total_cost": result.total_cost,
    }


def result_from_dict(data: Dict[str, Any]) -> SimulationResult:
    """Rebuild a simulation-result summary from its dictionary form."""
    try:
        ledger = CostLedger()
        for entry in data["records"]:
            ledger.add(
                UpdateRecord(
                    step_index=entry["step_index"],
                    step=RevealStep(entry["step"][0], entry["step"][1]),
                    moving_cost=entry["moving_cost"],
                    rearranging_cost=entry["rearranging_cost"],
                    kendall_tau=entry["kendall_tau"],
                )
            )
        result = SimulationResult(
            algorithm_name=data["algorithm"],
            ledger=ledger,
            final_arrangement=Arrangement(data["final_arrangement"]),
        )
    except (KeyError, TypeError, IndexError) as exc:
        raise ReproError(f"malformed result payload: {exc}") from exc
    if result.total_cost != data.get("total_cost", result.total_cost):
        raise ReproError("result payload is inconsistent: total_cost does not match records")
    return result


# ----------------------------------------------------------------------
# Files
# ----------------------------------------------------------------------
def save_json(payload: Dict[str, Any], path: PathLike) -> Path:
    """Write a JSON payload to ``path`` (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_json(path: PathLike) -> Dict[str, Any]:
    """Read a JSON payload from ``path``."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"no such file: {path}")
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ReproError(f"file {path} does not contain valid JSON: {exc}") from exc


def save_instance(instance: OnlineMinLAInstance, path: PathLike) -> Path:
    """Serialize an instance to a JSON file."""
    return save_json(instance_to_dict(instance), path)


def load_instance(path: PathLike) -> OnlineMinLAInstance:
    """Load an instance previously saved with :func:`save_instance`."""
    return instance_from_dict(load_json(path))


def save_result(result: SimulationResult, path: PathLike) -> Path:
    """Serialize a simulation result summary to a JSON file."""
    return save_json(result_to_dict(result), path)


def load_result(path: PathLike) -> SimulationResult:
    """Load a simulation result summary previously saved with :func:`save_result`."""
    return result_from_dict(load_json(path))
