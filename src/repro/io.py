"""JSON serialization of workloads, instances and run results.

Reproducibility is easier when the exact workload an experiment used can be
archived next to its results.  This module serializes the library's core
objects to plain JSON-compatible dictionaries (and back):

* reveal sequences (node universe, kind, steps),
* scenario workloads (registry name + seed + the generated sequences; the
  loader re-generates from the recipe and verifies bit-identity, so registry
  drift fails loudly),
* full instances (sequence + initial permutation),
* simulation results (algorithm name, per-step cost records with their
  moving/rearranging phase attribution, the streamed cost trace when one
  was recorded, and the final arrangement).

Deserialization re-validates what it loads: per-record phase costs must be
non-negative, the phase totals stored in the payload must match the records,
and a trace's totals must match its ledger — a hand-edited or corrupted
results file fails loudly instead of skewing a comparison.

Node labels must themselves be JSON-representable (integers or strings); the
generators in :mod:`repro.graphs.generators` use integers, and the virtual
network case study uses integers or short strings, so this covers every
object the library creates.  Round-tripping is validated in the test suite.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List, Union

from repro.core.cost import CostLedger, SimulationResult, UpdateRecord
from repro.core.instance import OnlineMinLAInstance
from repro.core.permutation import Arrangement
from repro.errors import ReproError
from repro.telemetry.trace import CostTrace, TraceEvent
from repro.graphs.reveal import (
    CliqueRevealSequence,
    GraphKind,
    LineRevealSequence,
    RevealSequence,
    RevealStep,
)

PathLike = Union[str, Path]


# ----------------------------------------------------------------------
# Reveal sequences
# ----------------------------------------------------------------------
def sequence_to_dict(sequence: RevealSequence) -> Dict[str, Any]:
    """A JSON-compatible description of a reveal sequence."""
    return {
        "kind": sequence.kind.value,
        "nodes": list(sequence.nodes),
        "steps": [[step.u, step.v] for step in sequence.steps],
    }


def sequence_from_dict(data: Dict[str, Any]) -> RevealSequence:
    """Rebuild (and re-validate) a reveal sequence from its dictionary form."""
    try:
        kind = GraphKind(data["kind"])
        nodes = data["nodes"]
        steps = [RevealStep(u, v) for u, v in data["steps"]]
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"malformed reveal sequence payload: {exc}") from exc
    if kind is GraphKind.CLIQUES:
        return CliqueRevealSequence(nodes, steps)
    return LineRevealSequence(nodes, steps)


# ----------------------------------------------------------------------
# Scenario workloads
# ----------------------------------------------------------------------
def workload_to_dict(
    scenario_name: str, num_nodes: int, seed: Any
) -> Dict[str, Any]:
    """Archive a registry scenario's reveal view next to experiment results.

    The payload stores the generation *recipe* (scenario name, node budget,
    seed) **and** the generated sequences, so a results directory remains
    self-describing even if the registry evolves — and the loader can verify
    the recipe still reproduces the archived workload bit-for-bit.
    """
    from repro.workloads.registry import get_scenario

    scenario = get_scenario(scenario_name)
    sequences = scenario.reveal_sequences(num_nodes, seed)
    return {
        "scenario": scenario.name,
        "num_nodes": num_nodes,
        "seed": seed,
        "sequences": [sequence_to_dict(sequence) for sequence in sequences],
    }


def workload_from_dict(data: Dict[str, Any]) -> "List[RevealSequence]":
    """Rebuild (and re-verify) an archived scenario workload.

    Three layers of validation: the payload's sequences must re-validate
    against the reveal model, the scenario must still be registered, and
    regenerating it from the stored ``(num_nodes, seed)`` must reproduce the
    archived steps exactly — a registry drift that silently changed a
    scenario's output fails loudly here instead of skewing a comparison.
    """
    from repro.workloads.registry import get_scenario

    try:
        scenario = get_scenario(data["scenario"])
        num_nodes = data["num_nodes"]
        seed = data["seed"]
        sequences = [sequence_from_dict(entry) for entry in data["sequences"]]
    except (KeyError, TypeError) as exc:
        raise ReproError(f"malformed workload payload: {exc}") from exc
    regenerated = scenario.reveal_sequences(num_nodes, seed)
    if len(regenerated) != len(sequences) or any(
        fresh.kind is not stored.kind
        or fresh.nodes != stored.nodes
        or fresh.steps != stored.steps
        for fresh, stored in zip(regenerated, sequences)
    ):
        raise ReproError(
            f"workload payload is inconsistent: scenario "
            f"{scenario.name!r} no longer reproduces the archived sequences "
            f"for num_nodes={num_nodes}, seed={seed!r}"
        )
    return sequences


def save_workload(scenario_name: str, num_nodes: int, seed: Any, path: PathLike) -> Path:
    """Serialize a scenario workload (recipe + sequences) to a JSON file."""
    return save_json(workload_to_dict(scenario_name, num_nodes, seed), path)


def load_workload(path: PathLike) -> "List[RevealSequence]":
    """Load and re-verify a workload previously saved with :func:`save_workload`."""
    return workload_from_dict(load_json(path))


# ----------------------------------------------------------------------
# Instances
# ----------------------------------------------------------------------
def instance_to_dict(instance: OnlineMinLAInstance) -> Dict[str, Any]:
    """A JSON-compatible description of an instance (sequence + π0)."""
    return {
        "sequence": sequence_to_dict(instance.sequence),
        "initial_arrangement": list(instance.initial_arrangement.order),
    }


def instance_from_dict(data: Dict[str, Any]) -> OnlineMinLAInstance:
    """Rebuild an instance from its dictionary form."""
    try:
        sequence = sequence_from_dict(data["sequence"])
        initial = Arrangement(data["initial_arrangement"])
    except (KeyError, TypeError) as exc:
        raise ReproError(f"malformed instance payload: {exc}") from exc
    return OnlineMinLAInstance(sequence, initial)


# ----------------------------------------------------------------------
# Cost traces
# ----------------------------------------------------------------------
def trace_to_dict(trace: CostTrace) -> Dict[str, Any]:
    """A JSON-compatible description of a streamed cost trace."""
    return {
        "every": trace.every,
        "num_steps": trace.num_steps,
        "total_moving_cost": trace.total_moving_cost,
        "total_rearranging_cost": trace.total_rearranging_cost,
        "total_kendall_tau": trace.total_kendall_tau,
        "events": [
            [
                event.step_index,
                event.moving_cost,
                event.rearranging_cost,
                event.kendall_tau,
                event.cumulative_cost,
            ]
            for event in trace.events
        ],
    }


def trace_from_dict(data: Dict[str, Any]) -> CostTrace:
    """Rebuild (and re-validate) a streamed cost trace from its dictionary form."""
    try:
        trace = CostTrace(
            events=tuple(
                TraceEvent(
                    step_index=step_index,
                    moving_cost=moving,
                    rearranging_cost=rearranging,
                    kendall_tau=kendall_tau,
                    cumulative_cost=cumulative,
                )
                for step_index, moving, rearranging, kendall_tau, cumulative in data[
                    "events"
                ]
            ),
            num_steps=data["num_steps"],
            every=data["every"],
            total_moving_cost=data["total_moving_cost"],
            total_rearranging_cost=data["total_rearranging_cost"],
            total_kendall_tau=data["total_kendall_tau"],
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ReproError(f"malformed trace payload: {exc}") from exc
    for event in trace.events:
        if (
            event.moving_cost < 0
            or event.rearranging_cost < 0
            or event.kendall_tau < 0
            or event.cumulative_cost < 0
        ):
            raise ReproError(
                f"trace payload is inconsistent: negative cost at step "
                f"{event.step_index}"
            )
    if trace.events:
        if trace.events[-1].cumulative_cost != trace.total_cost:
            raise ReproError(
                "trace payload is inconsistent: the final cumulative cost does "
                "not match the trace totals"
            )
    elif trace.total_cost != 0 or trace.total_kendall_tau != 0:
        raise ReproError(
            "trace payload is inconsistent: an event-less trace cannot have "
            "nonzero totals"
        )
    return trace


# ----------------------------------------------------------------------
# Result tables
# ----------------------------------------------------------------------
def table_to_dict(table) -> Dict[str, Any]:
    """A JSON-compatible description of a result table (title, columns, rows)."""
    return {
        "title": table.title,
        "columns": list(table.columns),
        "rows": [list(row) for row in table.rows],
    }


def table_from_dict(data: Dict[str, Any]):
    """Rebuild (and re-validate) a result table from its dictionary form.

    Row shape is validated by :meth:`~repro.experiments.tables.ResultTable.add_row`
    itself, so a payload whose rows drifted from its column list fails loudly
    instead of silently mis-aligning a comparison.
    """
    from repro.experiments.tables import ResultTable

    try:
        table = ResultTable(title=data["title"], columns=list(data["columns"]))
        for row in data["rows"]:
            table.add_row(*row)
    except (KeyError, TypeError) as exc:
        raise ReproError(f"malformed table payload: {exc}") from exc
    return table


# ----------------------------------------------------------------------
# Simulation results
# ----------------------------------------------------------------------
def result_to_dict(result: SimulationResult) -> Dict[str, Any]:
    """A JSON-compatible summary of a simulation result.

    The full trajectory (if recorded) is intentionally not serialized — it
    can be regenerated from the instance, the algorithm and the seed; the
    per-step cost records (with their moving/rearranging phase split), the
    streamed trace (if recorded) and the final arrangement are kept.
    """
    payload = {
        "algorithm": result.algorithm_name,
        "final_arrangement": list(result.final_arrangement.order),
        "records": [
            {
                "step_index": record.step_index,
                "step": [record.step.u, record.step.v],
                "moving_cost": record.moving_cost,
                "rearranging_cost": record.rearranging_cost,
                "kendall_tau": record.kendall_tau,
            }
            for record in result.ledger
        ],
        "total_cost": result.total_cost,
        "total_moving_cost": result.ledger.total_moving_cost,
        "total_rearranging_cost": result.ledger.total_rearranging_cost,
    }
    if result.trace is not None:
        payload["trace"] = trace_to_dict(result.trace)
    return payload


def result_from_dict(data: Dict[str, Any]) -> SimulationResult:
    """Rebuild a simulation-result summary from its dictionary form.

    Phase attribution is first-class: every record's moving/rearranging
    split is restored exactly, and the phase totals stored in the payload
    are cross-checked against the records so a payload whose split was
    mangled (not just its grand total) is rejected.
    """
    try:
        ledger = CostLedger()
        for entry in data["records"]:
            record = UpdateRecord(
                step_index=entry["step_index"],
                step=RevealStep(entry["step"][0], entry["step"][1]),
                moving_cost=entry["moving_cost"],
                rearranging_cost=entry["rearranging_cost"],
                kendall_tau=entry["kendall_tau"],
            )
            if record.moving_cost < 0 or record.rearranging_cost < 0:
                raise ReproError(
                    f"result payload is inconsistent: negative phase cost at "
                    f"step {record.step_index}"
                )
            ledger.add(record)
        trace = trace_from_dict(data["trace"]) if "trace" in data else None
        result = SimulationResult(
            algorithm_name=data["algorithm"],
            ledger=ledger,
            final_arrangement=Arrangement(data["final_arrangement"]),
            trace=trace,
        )
    except (KeyError, TypeError, IndexError) as exc:
        raise ReproError(f"malformed result payload: {exc}") from exc
    if result.total_cost != data.get("total_cost", result.total_cost):
        raise ReproError("result payload is inconsistent: total_cost does not match records")
    for phase, total in (
        ("total_moving_cost", ledger.total_moving_cost),
        ("total_rearranging_cost", ledger.total_rearranging_cost),
    ):
        if data.get(phase, total) != total:
            raise ReproError(
                f"result payload is inconsistent: {phase} does not match the "
                "records' phase attribution"
            )
    if trace is not None and (
        trace.total_moving_cost != ledger.total_moving_cost
        or trace.total_rearranging_cost != ledger.total_rearranging_cost
    ):
        raise ReproError(
            "result payload is inconsistent: trace totals do not match the ledger"
        )
    return result


# ----------------------------------------------------------------------
# Files
# ----------------------------------------------------------------------
def save_json(payload: Dict[str, Any], path: PathLike) -> Path:
    """Write a JSON payload to ``path`` (creating parent directories)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2, sort_keys=True))
    return path


def load_json(path: PathLike) -> Dict[str, Any]:
    """Read a JSON payload from ``path``."""
    path = Path(path)
    if not path.exists():
        raise ReproError(f"no such file: {path}")
    try:
        return json.loads(path.read_text())
    except json.JSONDecodeError as exc:
        raise ReproError(f"file {path} does not contain valid JSON: {exc}") from exc


def save_instance(instance: OnlineMinLAInstance, path: PathLike) -> Path:
    """Serialize an instance to a JSON file."""
    return save_json(instance_to_dict(instance), path)


def load_instance(path: PathLike) -> OnlineMinLAInstance:
    """Load an instance previously saved with :func:`save_instance`."""
    return instance_from_dict(load_json(path))


def save_result(result: SimulationResult, path: PathLike) -> Path:
    """Serialize a simulation result summary to a JSON file."""
    return save_json(result_to_dict(result), path)


def load_result(path: PathLike) -> SimulationResult:
    """Load a simulation result summary previously saved with :func:`save_result`."""
    return result_from_dict(load_json(path))
