"""Deterministic observability: metrics, spans, exporters, the clock seam.

The serving stack (:mod:`repro.service`) measures itself through this
package instead of keeping per-request state: shard workers aggregate into
fixed-bucket histograms (O(buckets) memory, exactly mergeable across
shards and processes), sampled requests leave reproducible span traces,
and every monotonic-clock read flows through the single seam in
:mod:`repro.obs.clock` (enforced tree-wide by the OBS001 analysis rule).
See ``DESIGN.md`` ("Observability subsystem") for the bucket-edge policy,
the span lifecycle and the sampling determinism story.
"""

from repro.obs.clock import Clock, ManualClock, MonotonicClock, get_clock, now, set_clock
from repro.obs.profile import (
    PROFILE_BUCKET_EDGES,
    ProfileSnapshot,
    ZoneProfiler,
    ZoneStat,
    active_profiler,
    add_work,
    count_work,
    merge_profiles,
    merge_work,
    profile_zone,
    profiling,
    render_zone_table,
    reset_work_counters,
    set_profiler,
    work_counter,
    work_delta,
    work_snapshot,
)
from repro.obs.export import (
    metrics_jsonl_lines,
    prometheus_text,
    resident_bytes,
    write_metrics_jsonl,
    write_prometheus_text,
)
from repro.obs.registry import (
    LATENCY_BUCKET_EDGES,
    Counter,
    FixedBucketHistogram,
    Gauge,
    HistogramSnapshot,
    MetricsRegistry,
    log_bucket_edges,
    merge_histograms,
)
from repro.obs.spans import (
    SPAN_NAMES,
    Span,
    SpanCollector,
    SpanSampler,
    SpanTrace,
    request_trace,
    spans_jsonl_lines,
    write_spans_jsonl,
)

__all__ = [
    "Clock",
    "Counter",
    "FixedBucketHistogram",
    "Gauge",
    "HistogramSnapshot",
    "LATENCY_BUCKET_EDGES",
    "ManualClock",
    "MetricsRegistry",
    "MonotonicClock",
    "PROFILE_BUCKET_EDGES",
    "ProfileSnapshot",
    "SPAN_NAMES",
    "Span",
    "SpanCollector",
    "SpanSampler",
    "SpanTrace",
    "ZoneProfiler",
    "ZoneStat",
    "active_profiler",
    "add_work",
    "count_work",
    "get_clock",
    "log_bucket_edges",
    "merge_histograms",
    "merge_profiles",
    "merge_work",
    "metrics_jsonl_lines",
    "now",
    "profile_zone",
    "profiling",
    "prometheus_text",
    "render_zone_table",
    "request_trace",
    "reset_work_counters",
    "resident_bytes",
    "set_clock",
    "set_profiler",
    "spans_jsonl_lines",
    "work_counter",
    "work_delta",
    "work_snapshot",
    "write_metrics_jsonl",
    "write_prometheus_text",
    "write_spans_jsonl",
]
