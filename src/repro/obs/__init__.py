"""Deterministic observability: metrics, spans, exporters, the clock seam.

The serving stack (:mod:`repro.service`) measures itself through this
package instead of keeping per-request state: shard workers aggregate into
fixed-bucket histograms (O(buckets) memory, exactly mergeable across
shards and processes), sampled requests leave reproducible span traces,
and every monotonic-clock read flows through the single seam in
:mod:`repro.obs.clock` (enforced tree-wide by the OBS001 analysis rule).
See ``DESIGN.md`` ("Observability subsystem") for the bucket-edge policy,
the span lifecycle and the sampling determinism story.
"""

from repro.obs.clock import Clock, ManualClock, MonotonicClock, get_clock, now, set_clock
from repro.obs.export import (
    metrics_jsonl_lines,
    prometheus_text,
    resident_bytes,
    write_metrics_jsonl,
    write_prometheus_text,
)
from repro.obs.registry import (
    LATENCY_BUCKET_EDGES,
    Counter,
    FixedBucketHistogram,
    Gauge,
    HistogramSnapshot,
    MetricsRegistry,
    log_bucket_edges,
    merge_histograms,
)
from repro.obs.spans import (
    SPAN_NAMES,
    Span,
    SpanCollector,
    SpanSampler,
    SpanTrace,
    request_trace,
    spans_jsonl_lines,
    write_spans_jsonl,
)

__all__ = [
    "Clock",
    "Counter",
    "FixedBucketHistogram",
    "Gauge",
    "HistogramSnapshot",
    "LATENCY_BUCKET_EDGES",
    "ManualClock",
    "MetricsRegistry",
    "MonotonicClock",
    "SPAN_NAMES",
    "Span",
    "SpanCollector",
    "SpanSampler",
    "SpanTrace",
    "get_clock",
    "log_bucket_edges",
    "merge_histograms",
    "metrics_jsonl_lines",
    "now",
    "prometheus_text",
    "request_trace",
    "resident_bytes",
    "set_clock",
    "spans_jsonl_lines",
    "write_metrics_jsonl",
    "write_prometheus_text",
    "write_spans_jsonl",
]
