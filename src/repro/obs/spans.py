"""Per-request span traces: seeded head-sampling, bounded retention, JSONL.

A sampled request's life is recorded as five spans —

``ingress`` (the submission instant) → ``queue`` (enqueue to batch opening)
→ ``batch`` (micro-batch fill) → ``engine`` (the rearrangement pass) →
``reply`` (engine finish to result handoff)

— all timed through the :mod:`repro.obs.clock` seam.  The sampling decision
is *head-based and seeded*: whether request ``i`` is traced depends only on
``(seed, i)`` (a keyed hash, not the global RNG), so two runs of the same
workload trace the same requests, on either worker backend, and tracing
never perturbs the serving RNG streams.  Retention is bounded
(``max_traces``), so tracing keeps the soak path at O(1) memory.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from hashlib import blake2b
from typing import Dict, Iterable, List, Tuple

from repro.errors import ObsError

#: The ordered span names of one request's lifecycle.
SPAN_NAMES: Tuple[str, ...] = ("ingress", "queue", "batch", "engine", "reply")


@dataclass(frozen=True)
class Span:
    """One named interval of a request's life, in monotonic seconds."""

    name: str
    start_seconds: float
    end_seconds: float

    @property
    def duration_seconds(self) -> float:
        return self.end_seconds - self.start_seconds


@dataclass(frozen=True)
class SpanTrace:
    """Every span of one sampled request, in lifecycle order."""

    request_index: int
    shard: int
    spans: Tuple[Span, ...]

    @property
    def latency_seconds(self) -> float:
        """Ingress to reply — the same number the latency histogram sees."""
        return self.spans[-1].end_seconds - self.spans[0].start_seconds

    def to_json(self) -> Dict[str, object]:
        return {
            "request_index": self.request_index,
            "shard": self.shard,
            "spans": [
                {
                    "name": span.name,
                    "start_s": span.start_seconds,
                    "duration_s": span.duration_seconds,
                }
                for span in self.spans
            ],
        }


def request_trace(
    request_index: int,
    shard: int,
    enqueued_at: float,
    opened_at: float,
    engine_started_at: float,
    engine_finished_at: float,
    replied_at: float,
) -> SpanTrace:
    """Assemble the canonical five-span trace from a batch's timestamps.

    Both worker backends call this with the same five readings, so traces
    have one shape everywhere: ``ingress`` is the zero-length submission
    mark, ``queue`` runs to the batch opening, ``batch`` covers the
    micro-batch fill, ``engine`` the rearrangement pass, and ``reply`` the
    handoff of the served batch.
    """
    return SpanTrace(
        request_index=request_index,
        shard=shard,
        spans=(
            Span("ingress", enqueued_at, enqueued_at),
            Span("queue", enqueued_at, opened_at),
            Span("batch", opened_at, engine_started_at),
            Span("engine", engine_started_at, engine_finished_at),
            Span("reply", engine_finished_at, replied_at),
        ),
    )


class SpanSampler:
    """The deterministic head-sampling decision: trace request ``i`` or not.

    The decision compares an 8-bit BLAKE2b lane keyed by ``(seed, index)``
    against ``rate`` — a pure function of the two, independent of platform
    hash randomization and of every serving RNG stream.  Because the
    decision sits on the per-request hot path, the hash is amortized:
    one 64-byte digest of ``f"{seed}|span|{index // 64}"`` covers 64
    consecutive indices (one byte each), mapped to hit flags in a single
    C-level ``bytes.translate`` and cached — request indices arrive in
    runs, so the steady-state cost is a 64th of a hash per request and
    the skip-ahead scan (:meth:`next_sampled`) is a ``bytes.find`` (the
    bench gate in ``benchmarks/bench_obs.py`` rides on this).  The cache
    is worker-local (:class:`SpanCollector` clones its sampler) so shards
    with interleaved index streams never thrash each other's block.
    """

    #: Indices per cached decision block (one 64-byte digest).
    BLOCK = 64

    def __init__(self, seed: object, rate: float) -> None:
        if not 0.0 <= rate <= 1.0:
            raise ObsError(f"span sample rate must lie in [0, 1], got {rate}")
        self._seed = seed
        self.rate = float(rate)
        threshold = self.rate * 256.0
        # Maps a digest byte to \x01 when it samples, so a whole block's
        # decisions are one translate() and the scan is one find().
        self._table = bytes(
            1 if byte < threshold else 0 for byte in range(256)
        )
        # (block index, 64 hit flags) — one reference, assigned whole, so
        # even a sampler shared across threads never exposes a torn pair
        # (any thread at worst recomputes the same pure-function block).
        self._block: Tuple[int, bytes] = (-1, b"")

    def clone(self) -> "SpanSampler":
        """A sampler with the same decisions but its own block cache."""
        return SpanSampler(self._seed, self.rate)

    def _decide_block(self, block_index: int) -> bytes:
        digest = blake2b(
            f"{self._seed}|span|{block_index}".encode("utf-8"),
            digest_size=64,
        ).digest()
        return digest.translate(self._table)

    def sampled(self, request_index: int) -> bool:
        if self.rate <= 0.0:
            return False
        if self.rate >= 1.0:
            return True
        block_index, hits = self._block
        if request_index >> 6 != block_index:
            block_index = request_index >> 6
            hits = self._decide_block(block_index)
            self._block = (block_index, hits)
        return hits[request_index & 63] == 1

    def next_sampled(self, start: int) -> int:
        """The smallest sampled index ``>= start`` (the skip-ahead scan).

        Exactly consistent with :meth:`sampled` — it walks the same cached
        decision blocks — but lets a monotone caller leap over every
        unsampled index with one integer comparison instead of one call
        per request (see :attr:`SpanCollector.next_interesting`).  The
        scan always terminates: any positive rate samples digest byte 0,
        which turns up within a few 64-index blocks.
        """
        if self.rate >= 1.0:
            return start
        if self.rate <= 0.0:
            raise ObsError("next_sampled() is undefined at rate 0.0")
        index = start
        while True:
            block_index, hits = self._block
            if index >> 6 != block_index:
                block_index = index >> 6
                hits = self._decide_block(block_index)
                self._block = (block_index, hits)
            lane = hits.find(1, index & 63)
            if lane >= 0:
                return (block_index << 6) + lane
            index = (block_index + 1) << 6


class SpanCollector:
    """Worker-local retention of sampled traces, bounded by ``max_traces``.

    Single-writer, like the shard metrics: the worker asks :meth:`wants`
    before recording (so unsampled requests pay only the sampling check)
    and records the sampled ones until the cap — per-shard request order
    is deterministic in replay mode, so even the set that survives the cap
    is reproducible.  Two things keep tracing off the serving critical
    path (the ``bench_obs.py`` overhead gate rides on both):

    * :attr:`next_interesting` lets a worker with monotone request
      indices skip every unsampled request with one integer comparison —
      only indices at or past it need a :meth:`wants` call;
    * the hot path (:meth:`record_raw`) appends a plain timestamp tuple,
      and :class:`SpanTrace` objects are only materialized when
      :meth:`traces` is read.
    """

    #: ``next_interesting`` once nothing further can be traced (rate 0 or
    #: the retention cap reached): past every real request index.
    NEVER = 1 << 62

    def __init__(self, sampler: SpanSampler, max_traces: int = 256) -> None:
        if max_traces < 1:
            raise ObsError(f"max_traces must be positive, got {max_traces}")
        # Own copy: shard index streams interleave, so collectors sharing
        # one sampler would thrash its decision-block cache.
        self._sampler = sampler.clone()
        self._max_traces = max_traces
        self._raw: List[Tuple[int, int, float, float, float, float, float]] = []
        rate = self._sampler.rate
        #: The smallest request index a monotone caller still needs to ask
        #: :meth:`wants` about; indices below it are guaranteed unsampled.
        self.next_interesting: int = (
            self.NEVER if rate <= 0.0 else self._sampler.next_sampled(0)
        )

    def wants(self, request_index: int) -> bool:
        """Whether this request should be traced (sampled and under cap)."""
        if len(self._raw) >= self._max_traces:
            self.next_interesting = self.NEVER
            return False
        rate = self._sampler.rate
        if rate >= 1.0:
            return True
        if rate <= 0.0:
            return False
        ahead = self.next_interesting
        if request_index == ahead:
            self.next_interesting = self._sampler.next_sampled(request_index + 1)
            return True
        if request_index > ahead:
            ahead = self._sampler.next_sampled(request_index)
            if request_index == ahead:
                self.next_interesting = self._sampler.next_sampled(
                    request_index + 1
                )
                return True
            self.next_interesting = ahead
            return False
        # An out-of-order probe (tests, replays): answer exactly without
        # disturbing the skip-ahead pointer.
        return self._sampler.sampled(request_index)

    def record_raw(
        self,
        request_index: int,
        shard: int,
        enqueued_at: float,
        opened_at: float,
        engine_started_at: float,
        engine_finished_at: float,
        replied_at: float,
    ) -> None:
        """Retain one sampled request's five lifecycle timestamps."""
        if len(self._raw) < self._max_traces:
            self._raw.append(
                (
                    request_index,
                    shard,
                    enqueued_at,
                    opened_at,
                    engine_started_at,
                    engine_finished_at,
                    replied_at,
                )
            )

    def record(self, trace: SpanTrace) -> None:
        """Retain an already-built trace (the cold, test-facing path)."""
        self.record_raw(
            trace.request_index,
            trace.shard,
            trace.spans[0].start_seconds,
            trace.spans[1].end_seconds,
            trace.spans[2].end_seconds,
            trace.spans[3].end_seconds,
            trace.spans[4].end_seconds,
        )

    def traces(self) -> Tuple[SpanTrace, ...]:
        """The retained traces, sorted by request index."""
        return tuple(
            request_trace(*raw) for raw in sorted(self._raw)
        )


def spans_jsonl_lines(traces: Iterable[SpanTrace]) -> List[str]:
    """One compact JSON document per trace (the JSONL emission format)."""
    return [
        json.dumps(trace.to_json(), separators=(",", ":")) for trace in traces
    ]


def write_spans_jsonl(path: str, traces: Iterable[SpanTrace]) -> int:
    """Write traces to ``path`` as JSONL; returns how many were written."""
    lines = spans_jsonl_lines(traces)
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")
    return len(lines)
