"""Exporters and process introspection: Prometheus text, JSONL, RSS.

The exporters consume the plain mapping a
:meth:`~repro.obs.registry.MetricsRegistry.snapshot` (or the serving
layer's fleet-metrics helper) produces — ``int`` values render as
counters, ``float`` values as gauges, and
:class:`~repro.obs.registry.HistogramSnapshot` values as Prometheus
histograms with cumulative ``le`` buckets plus the standard ``_sum`` /
``_count`` series.  Output is name-sorted, so exports are byte-stable for
a given snapshot.

:func:`resident_bytes` reads the process's resident set size from
``/proc/self/status`` — the measurement behind the soak mode's flat-memory
claim (E15).  It returns ``None`` where ``/proc`` is unavailable, and
callers skip their RSS assertions rather than fake them.
"""

from __future__ import annotations

import json
import math
import re
from typing import Dict, List, Mapping, Optional

from repro.obs.registry import HistogramSnapshot, MetricValue


def _prometheus_name(name: str, prefix: str) -> str:
    sanitized = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    return f"{prefix}_{sanitized}" if prefix else sanitized


def _format_number(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(
    metrics: Mapping[str, MetricValue], prefix: str = "repro"
) -> str:
    """Render a metrics snapshot in the Prometheus text exposition format."""
    lines: List[str] = []
    for name in sorted(metrics):
        value = metrics[name]
        full_name = _prometheus_name(name, prefix)
        if isinstance(value, HistogramSnapshot):
            lines.append(f"# TYPE {full_name} histogram")
            cumulative = 0
            for edge, count in zip(value.edges, value.counts):
                cumulative += count
                lines.append(
                    f'{full_name}_bucket{{le="{_format_number(edge)}"}} '
                    f"{cumulative}"
                )
            cumulative += value.counts[-1]
            lines.append(f'{full_name}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{full_name}_sum {repr(value.sum)}")
            lines.append(f"{full_name}_count {value.count}")
        elif isinstance(value, int):
            lines.append(f"# TYPE {full_name} counter")
            lines.append(f"{full_name} {value}")
        else:
            lines.append(f"# TYPE {full_name} gauge")
            lines.append(f"{full_name} {_format_number(value)}")
    return "\n".join(lines) + "\n"


def metrics_jsonl_lines(metrics: Mapping[str, MetricValue]) -> List[str]:
    """One JSON document per metric, name-sorted (the JSONL export)."""
    lines: List[str] = []
    for name in sorted(metrics):
        value = metrics[name]
        if isinstance(value, HistogramSnapshot):
            payload: Dict[str, object] = {
                "metric": name,
                "type": "histogram",
                "histogram": value.to_json(),
            }
        else:
            payload = {
                "metric": name,
                "type": "counter" if isinstance(value, int) else "gauge",
                "value": value,
            }
        lines.append(json.dumps(payload, separators=(",", ":")))
    return lines


def write_prometheus_text(
    path: str, metrics: Mapping[str, MetricValue], prefix: str = "repro"
) -> None:
    """Write a snapshot to ``path`` in Prometheus text format."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(prometheus_text(metrics, prefix=prefix))


def write_metrics_jsonl(path: str, metrics: Mapping[str, MetricValue]) -> int:
    """Write a snapshot to ``path`` as JSONL; returns how many lines."""
    lines = metrics_jsonl_lines(metrics)
    with open(path, "w", encoding="utf-8") as handle:
        for line in lines:
            handle.write(line + "\n")
    return len(lines)


def resident_bytes() -> Optional[int]:
    """This process's resident set size in bytes, or ``None`` off-Linux."""
    try:
        with open("/proc/self/status", "r", encoding="ascii") as handle:
            for line in handle:
                if line.startswith("VmRSS:"):
                    kilobytes = int(line.split()[1])
                    return kilobytes * 1024
    except (OSError, ValueError, IndexError):
        return None
    return None
