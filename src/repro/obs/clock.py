"""The monotonic-clock seam: every timing read in the tree goes through here.

Timing is observability, never semantics — served cost totals must be a
pure function of ``(scenario, seed, shards, batch)`` regardless of what any
clock says.  To keep that boundary auditable, this module is the *single*
sanctioned reader of the process's monotonic clock: everything else calls
:func:`now` (or holds a :class:`Clock`), and the OBS001 analysis rule flags
any direct ``time.monotonic()`` / ``time.perf_counter()`` call outside this
file.

The seam is also what makes timing mockable: tests install a
:class:`ManualClock` with :func:`set_clock` and advance it explicitly, so
latency bookkeeping can be exercised with exact, deterministic durations.
The active clock is a module-level object, inherited across ``fork()`` —
worker processes of the process backend see whatever clock the parent had
installed at fork time.
"""

from __future__ import annotations

# The one sanctioned monotonic read in the tree (see module docstring and
# the OBS001 rule in repro.analysis.rules_obs).
from time import perf_counter as _read_monotonic

from repro.errors import ObsError


class Clock:
    """Something that answers "how many seconds have passed" monotonically."""

    def now(self) -> float:
        """The current monotonic reading, in seconds."""
        raise NotImplementedError


class MonotonicClock(Clock):
    """The real clock: ``time.perf_counter`` behind the seam."""

    def now(self) -> float:
        return _read_monotonic()


class ManualClock(Clock):
    """A test clock that only moves when told to.

    ``advance()`` is the only mutator, so a test controls every measured
    duration exactly::

        clock = ManualClock()
        set_clock(clock)
        ...               # code under test reads now() == 0.0
        clock.advance(1.5)
        ...               # now() == 1.5
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, seconds: float) -> float:
        """Move the clock forward; returns the new reading."""
        if not seconds >= 0.0:
            raise ObsError(
                f"a monotonic clock cannot move backwards (advance {seconds})"
            )
        self._now += float(seconds)
        return self._now


_active: Clock = MonotonicClock()


def get_clock() -> Clock:
    """The currently installed clock."""
    return _active


def set_clock(clock: Clock) -> Clock:
    """Install ``clock`` as the process-wide clock; returns the previous one.

    Tests should restore the previous clock in a ``finally`` block — the
    installed clock is global state, like the real clock it stands in for.
    """
    global _active
    if not isinstance(clock, Clock):
        raise ObsError(f"set_clock() needs a Clock, got {type(clock).__name__}")
    previous = _active
    _active = clock
    return previous


def now() -> float:
    """The active clock's current monotonic reading, in seconds."""
    return _active.now()
