"""The metrics registry: counters, gauges, fixed-bucket latency histograms.

The histogram is the load-bearing piece.  A served run used to keep one
``ServeResult`` per request so percentiles could be exact — ``O(requests)``
memory, the one thing that broke the stream architecture's boundedness.  A
:class:`FixedBucketHistogram` replaces that with ``O(buckets)`` state:

* **edges are fixed at construction** (log-spaced by default, see
  :func:`log_bucket_edges`), so two histograms built from the same edges are
  structurally identical and can be merged by adding their integer counts —
  merging is exactly associative and commutative, and therefore
  *bit-identical* regardless of shard count, worker backend, or the order
  snapshots arrive in;
* **counts are exact integers** — no sampling, no decay — so a merged
  fleet histogram reports every request ever recorded;
* **percentiles are nearest-rank over buckets**: the reported value is the
  upper edge of the bucket holding the rank, so it always *bounds* the
  exact nearest-rank percentile from above, and the error is at most one
  bucket width (the exact value lies in the same bucket).  The ``sum`` and
  ``max`` are tracked exactly on the side, so ``mean`` and ``max`` carry no
  bucket error at all.

Workers aggregate locally into these histograms and ship compact
:class:`HistogramSnapshot` messages instead of per-request results; the
opt-in exact path (``--retain-requests``) still exists for audits, and the
E15 tests prove the histogram percentiles bound the exact ones within one
bucket width.
"""

from __future__ import annotations

import math
from bisect import bisect_left
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import ObsError


def log_bucket_edges(
    low: float, high: float, per_decade: int = 10
) -> Tuple[float, ...]:
    """Log-spaced bucket upper edges from ``low`` until ``high`` is covered.

    Edge ``k`` is ``low * 10**(k / per_decade)``; the sequence stops at the
    first edge ``>= high``.  Edges are a pure function of the arguments, so
    every shard of a deployment builds the same bucket layout without any
    coordination.
    """
    if not (low > 0.0 and math.isfinite(low)):
        raise ObsError(f"bucket edges need a positive finite low, got {low}")
    if not (high > low and math.isfinite(high)):
        raise ObsError(f"bucket edges need high > low, got high={high} low={low}")
    if per_decade < 1:
        raise ObsError(f"per_decade must be a positive integer, got {per_decade}")
    edges: List[float] = []
    k = 0
    while True:
        edge = low * 10.0 ** (k / per_decade)
        edges.append(edge)
        if edge >= high:
            return tuple(edges)
        k += 1


#: The default latency bucket layout: 10 µs to 10 s, ten buckets per decade
#: (every edge ~26% above the last, so a histogram percentile is never more
#: than ~26% above the exact one).  61 buckets plus overflow — a shard's
#: entire latency state is ~62 integers no matter how many requests it
#: serves.
LATENCY_BUCKET_EDGES: Tuple[float, ...] = log_bucket_edges(1e-5, 10.0, 10)


def _validate_edges(edges: Sequence[float]) -> Tuple[float, ...]:
    validated = tuple(float(edge) for edge in edges)
    if not validated:
        raise ObsError("a histogram needs at least one bucket edge")
    for previous, current in zip(validated, validated[1:]):
        if not current > previous:
            raise ObsError(
                "histogram bucket edges must be strictly increasing; "
                f"got {previous} then {current}"
            )
    if not all(math.isfinite(edge) and edge > 0.0 for edge in validated):
        raise ObsError("histogram bucket edges must be positive and finite")
    return validated


def _percentile_from_counts(
    edges: Tuple[float, ...], counts: Sequence[int], total: int, q: float
) -> Optional[int]:
    """The bucket index holding the nearest-rank ``q`` (None when empty)."""
    if not 0.0 < q <= 1.0:
        raise ObsError(f"percentile q must lie in (0, 1], got {q}")
    if total == 0:
        return None
    rank = max(math.ceil(q * total), 1)
    cumulative = 0
    for index, count in enumerate(counts):
        cumulative += count
        if cumulative >= rank:
            return index
    raise ObsError("histogram counts are inconsistent with their total")


@dataclass(frozen=True)
class HistogramSnapshot:
    """An immutable, mergeable copy of one histogram's state.

    Snapshots are what worker processes ship home (picklable, compact) and
    what summaries/exporters read.  ``counts`` has one entry per edge plus a
    final overflow bucket for values above the last edge.
    """

    edges: Tuple[float, ...]
    counts: Tuple[int, ...]
    sum: float
    """Sum of every recorded value, so ``mean`` carries no bucket error.

    Floating-point addition is not associative, so merge *order* can
    perturb the sum's last ulp — the bit-identity guarantee covers the
    integer ``counts`` (and everything derived from them: percentiles,
    ``count``) plus ``min``/``max``, never the sum.
    """
    min: Optional[float]
    max: Optional[float]
    """Exact extremes of the recorded values (None when empty)."""

    @property
    def count(self) -> int:
        """How many values this histogram has absorbed."""
        return sum(self.counts)

    @property
    def mean(self) -> Optional[float]:
        """Exact mean of the recorded values (None when empty)."""
        total = self.count
        if total == 0:
            return None
        return self.sum / total

    def percentile(self, q: float) -> Optional[float]:
        """Nearest-rank percentile, reported as its bucket's upper edge.

        Returns ``None`` on an empty histogram — never a fake ``0.0`` —
        and ``math.inf`` when the rank lands in the overflow bucket (the
        layout was too small for the data; widen the edges).
        """
        index = _percentile_from_counts(self.edges, self.counts, self.count, q)
        if index is None:
            return None
        if index == len(self.edges):
            return math.inf
        return self.edges[index]

    def percentile_bounds(self, q: float) -> Optional[Tuple[float, float]]:
        """The ``(lower, upper)`` edges of the bucket holding rank ``q``.

        The exact nearest-rank percentile lies in this half-open interval
        ``(lower, upper]`` — the one-bucket-width error bound the E15 tests
        assert.
        """
        index = _percentile_from_counts(self.edges, self.counts, self.count, q)
        if index is None:
            return None
        lower = 0.0 if index == 0 else self.edges[index - 1]
        upper = math.inf if index == len(self.edges) else self.edges[index]
        return lower, upper

    def merge(self, other: "HistogramSnapshot") -> "HistogramSnapshot":
        """This snapshot plus ``other`` (same edges required)."""
        return merge_histograms((self, other))

    def to_json(self) -> Dict[str, object]:
        """A JSON-serializable dict (the JSONL exporter's payload)."""
        return {
            "edges": list(self.edges),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def empty(
        cls, edges: Sequence[float] = LATENCY_BUCKET_EDGES
    ) -> "HistogramSnapshot":
        """A zero-count snapshot over ``edges``."""
        validated = _validate_edges(edges)
        return cls(
            edges=validated,
            counts=tuple(0 for _ in range(len(validated) + 1)),
            sum=0.0,
            min=None,
            max=None,
        )


def merge_histograms(
    snapshots: Iterable[HistogramSnapshot],
) -> HistogramSnapshot:
    """Sum histogram snapshots bucket by bucket.

    Counts are integers, so the merge is exactly associative and
    commutative: any grouping and any order of the same snapshots produces
    bit-identical counts.  All inputs must share one edge layout.
    """
    merged: Optional[HistogramSnapshot] = None
    for snapshot in snapshots:
        if merged is None:
            merged = snapshot
            continue
        if snapshot.edges != merged.edges:
            raise ObsError(
                "cannot merge histograms with different bucket edges "
                f"({len(merged.edges)} vs {len(snapshot.edges)} edges)"
            )
        extremes = [
            value
            for value in (merged.min, snapshot.min, merged.max, snapshot.max)
            if value is not None
        ]
        merged = HistogramSnapshot(
            edges=merged.edges,
            counts=tuple(
                ours + theirs
                for ours, theirs in zip(merged.counts, snapshot.counts)
            ),
            sum=merged.sum + snapshot.sum,
            min=min(extremes) if extremes else None,
            max=max(extremes) if extremes else None,
        )
    if merged is None:
        raise ObsError("merge_histograms() needs at least one snapshot")
    return merged


class FixedBucketHistogram:
    """A mutable histogram with edges fixed at construction.

    Single-writer by design: each shard worker owns one and records into it
    without locks; readers take :meth:`snapshot` copies.  ``record`` is a
    bisect plus three scalar updates — cheap enough for the hot serving
    path (the bench gate in ``benchmarks/bench_obs.py`` holds it to <5%
    of loadgen throughput).
    """

    __slots__ = ("edges", "_counts", "_sum", "_min", "_max")

    def __init__(self, edges: Sequence[float] = LATENCY_BUCKET_EDGES) -> None:
        self.edges = _validate_edges(edges)
        self._counts = [0] * (len(self.edges) + 1)
        self._sum = 0.0
        self._min: Optional[float] = None
        self._max: Optional[float] = None

    @property
    def count(self) -> int:
        return sum(self._counts)

    def record(self, value: float) -> None:
        """Absorb one observation (finite, non-negative)."""
        observed = float(value)
        if not (math.isfinite(observed) and observed >= 0.0):
            raise ObsError(
                f"histograms record finite non-negative values, got {value!r}"
            )
        # bisect_left finds the first edge >= value: buckets are half-open
        # (previous_edge, edge], values above the last edge overflow.
        self._counts[bisect_left(self.edges, observed)] += 1
        self._sum += observed
        if self._min is None or observed < self._min:
            self._min = observed
        if self._max is None or observed > self._max:
            self._max = observed

    def update(self, other: Union["FixedBucketHistogram", HistogramSnapshot]) -> None:
        """Fold another histogram's counts into this one (same edges)."""
        snapshot = other if isinstance(other, HistogramSnapshot) else other.snapshot()
        merged = merge_histograms((self.snapshot(), snapshot))
        self._counts = list(merged.counts)
        self._sum = merged.sum
        self._min = merged.min
        self._max = merged.max

    def percentile(self, q: float) -> Optional[float]:
        """See :meth:`HistogramSnapshot.percentile`."""
        return self.snapshot().percentile(q)

    def snapshot(self) -> HistogramSnapshot:
        """An immutable copy of the current state."""
        return HistogramSnapshot(
            edges=self.edges,
            counts=tuple(self._counts),
            sum=self._sum,
            min=self._min,
            max=self._max,
        )


class Counter:
    """A monotonically increasing integer (requests served, reveals, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ObsError(f"counters only move forward, got increment {amount}")
        self.value += int(amount)


class Gauge:
    """A point-in-time float (queue depth, busy fraction, RSS bytes, ...)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def track_max(self, value: float) -> None:
        """Keep the high-water mark of everything seen."""
        observed = float(value)
        if observed > self.value:
            self.value = observed


#: What a registry snapshot maps names to: counter value, gauge value, or a
#: histogram snapshot.
MetricValue = Union[int, float, HistogramSnapshot]


class MetricsRegistry:
    """A named collection of metrics with get-or-create accessors.

    The registry is the unit exporters consume: :meth:`snapshot` returns a
    name-sorted mapping (deterministic output order regardless of creation
    order) of plain values and histogram snapshots.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, object] = {}

    def _get_or_create(self, name: str, kind: type, factory) -> object:
        if not name:
            raise ObsError("metric names must be non-empty")
        existing = self._metrics.get(name)
        if existing is None:
            created = factory()
            self._metrics[name] = created
            return created
        if not isinstance(existing, kind):
            raise ObsError(
                f"metric {name!r} is already registered as a "
                f"{type(existing).__name__}, not a {kind.__name__}"
            )
        return existing

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge, Gauge)

    def histogram(
        self, name: str, edges: Sequence[float] = LATENCY_BUCKET_EDGES
    ) -> FixedBucketHistogram:
        histogram = self._get_or_create(
            name, FixedBucketHistogram, lambda: FixedBucketHistogram(edges)
        )
        if histogram.edges != _validate_edges(edges):
            raise ObsError(
                f"histogram {name!r} is already registered with different edges"
            )
        return histogram

    def snapshot(self) -> Dict[str, MetricValue]:
        """Every metric's current value, keyed by name, name-sorted."""
        values: Dict[str, MetricValue] = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            if isinstance(metric, Counter):
                values[name] = metric.value
            elif isinstance(metric, Gauge):
                values[name] = metric.value
            else:
                assert isinstance(metric, FixedBucketHistogram)
                values[name] = metric.snapshot()
        return values
