"""Deterministic work counters and the opt-in hierarchical zone profiler.

Two observability surfaces for the offline engine, with opposite
determinism contracts:

**Work counters** are always-on integers counting *algorithmic* work —
slides and reversals performed by :mod:`repro.core.permutation`, swaps
charged per :class:`~repro.core.cost.CostLedger` phase, elements pushed
through each :mod:`repro.telemetry.backends` dispatch, incremental-vs-full
checks in the MinLA verifier, hit/miss/evict in the vnet distance cache.
Work is semantics, not timing: for a fixed ``(experiment, scale, seed)``
the counters are **bit-identical** across ``--jobs``, telemetry backends,
and thread/process service fleets — a correctness surface gated exactly
like costs (``runs compare`` holds counter drift to zero while timings
keep a tolerance band).

The counting discipline mirrors :class:`~repro.service.observation.ShardMetrics`:
every thread writes into its *own* registry (single-writer, no locks on
the hot path), registries self-register under a lock on first touch, and
:func:`work_snapshot` merges them by exact integer addition — associative,
commutative, order-independent.  Worker *processes* cannot be merged in
place, so they ship :func:`work_delta` dicts home over their result
queues (pool workers are reused across tasks, which is why deltas — not
absolutes — cross the process boundary) and the parent folds them in with
:func:`add_work`.

**Zone timing** is opt-in and never bit-identical — it reads the clock
(only through the :mod:`repro.obs.clock` seam, so ``ManualClock`` makes
zone *trees* exactly reproducible in tests).  ``with profile_zone("verify")``
attributes self/cumulative seconds to the active zone *path* (parents are
whatever zones are open on the same thread), aggregating into the same
log-bucket histograms the serving stack uses — O(zones × buckets) memory,
mergeable across threads, workers, and runs.  When no profiler is
installed, :func:`profile_zone` is one module-global load and a ``None``
check returning a shared no-op context manager: zero clock reads, zero
allocation (the bench gate in ``benchmarks/bench_profile.py`` holds it
near-zero).

Zone names follow ``component.verb`` (``"trial"``, ``"simulate.process"``,
``"simulate.verify"``) and must be static strings — never interpolate run
ids or seeds into a name, or snapshots stop merging across runs.  See
DESIGN.md ("Engine observability") for the counter catalog and the full
naming convention.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import ContextManager, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import ObsError
from repro.obs.clock import now as clock_now
from repro.obs.registry import (
    Counter,
    FixedBucketHistogram,
    HistogramSnapshot,
    MetricsRegistry,
    log_bucket_edges,
    merge_histograms,
)

#: Zone duration bucket layout: 1 µs to 100 s, five buckets per decade.
#: Wider than the latency layout (an experiment zone can run minutes) and
#: coarser (zone timing is for attribution, not SLO percentiles).
PROFILE_BUCKET_EDGES: Tuple[float, ...] = log_bucket_edges(1e-6, 100.0, 5)


# ---------------------------------------------------------------------------
# Work counters
# ---------------------------------------------------------------------------

_work_lock = threading.Lock()
#: Every thread's work registry, appended on first touch; merged (never
#: mutated) by readers.  Guarded by ``_work_lock``.
_work_registries: List[MetricsRegistry] = []


class _WorkLocal(threading.local):
    """Each thread's private registry, self-registered for merging.

    ``counters`` caches ``name -> Counter`` so the hot-path increment is a
    dict hit plus an integer add — no registry get-or-create per event.
    The cache stays valid across :func:`reset_work_counters` because
    resets zero the counter objects in place rather than replacing them.
    """

    def __init__(self) -> None:
        registry = MetricsRegistry()
        self.registry = registry
        self.counters: Dict[str, Counter] = {}
        with _work_lock:
            _work_registries.append(registry)


_work_local = _WorkLocal()


def work_counter(name: str) -> Counter:
    """Get-or-create the calling thread's counter for ``name``.

    The returned :class:`Counter` is thread-private — never share it across
    threads (single-writer is what makes the merge exact without locks).
    """
    return _work_local.registry.counter(name)


def count_work(name: str, amount: int = 1) -> None:
    """The hot-path increment: bump the calling thread's ``name`` counter.

    ``amount`` must be non-negative (work only accumulates); instrumented
    call sites pass pre-computed integers (a swap count, an element count)
    so the instrumentation itself never does per-element work.  The bench
    gate (``benchmarks/bench_profile.py``) holds this path within 5% of a
    stubbed no-op, which is why it is a cached dict hit and an add — the
    non-negativity contract is enforced at merge time, not per increment.
    """
    local = _work_local
    counter = local.counters.get(name)
    if counter is None:
        counter = local.registry.counter(name)
        local.counters[name] = counter
    counter.value += amount


def work_snapshot() -> Dict[str, int]:
    """Every work counter summed across threads, name-sorted.

    Exact integer merge of the per-thread registries — order-independent,
    so the result is bit-identical however threads interleaved.  Call at
    quiesce points (workers joined, or between runs): a mid-run read can
    see another thread's counter between increments, which is fine for
    live introspection but not for the determinism gate.
    """
    with _work_lock:
        registries = list(_work_registries)
    total: Dict[str, int] = {}
    for registry in registries:
        for name, value in sorted(registry.snapshot().items()):
            total[name] = total.get(name, 0) + int(value)
    return {name: total[name] for name in sorted(total)}


def work_delta(
    before: Mapping[str, int], after: Mapping[str, int]
) -> Dict[str, int]:
    """``after - before`` per counter, dropping zero entries, name-sorted.

    This is the unit that crosses process boundaries and lands in the run
    store: zero entries are dropped so the dict depends only on the work a
    run actually performed, never on which instrumented modules happen to
    be imported (keeping archived run digests stable as the catalog grows).
    """
    delta: Dict[str, int] = {}
    for name in sorted(after):
        changed = int(after[name]) - int(before.get(name, 0))
        if changed < 0:
            raise ObsError(
                f"work counter {name!r} moved backwards "
                f"({before.get(name, 0)} -> {after[name]})"
            )
        if changed:
            delta[name] = changed
    return delta


def add_work(delta: Mapping[str, int]) -> None:
    """Fold a shipped :func:`work_delta` into the calling thread's registry.

    Used by the parent process to absorb work performed in pool or shard
    worker processes, so ``--jobs 4`` and the process fleet report the
    same totals as the sequential path.
    """
    registry = _work_local.registry
    for name in sorted(delta):
        registry.counter(name).inc(delta[name])


def merge_work(parts: Iterable[Mapping[str, int]]) -> Dict[str, int]:
    """Sum work dicts (exact, order-independent), dropping zero totals."""
    total: Dict[str, int] = {}
    for part in parts:
        for name, value in sorted(part.items()):
            total[name] = total.get(name, 0) + int(value)
    return {name: total[name] for name in sorted(total) if total[name]}


def reset_work_counters() -> None:
    """Zero every registered work counter, in every thread's registry.

    Only safe when no other thread is counting (tests and bench baselines);
    the engine itself never resets — runs measure deltas instead.
    """
    with _work_lock:
        registries = list(_work_registries)
    for registry in registries:
        for name in registry.snapshot():
            registry.counter(name).value = 0


# ---------------------------------------------------------------------------
# Zone profiler
# ---------------------------------------------------------------------------


class _Frame:
    """One open zone on a thread's stack."""

    __slots__ = ("path", "started", "child_seconds")

    def __init__(self, path: Tuple[str, ...], started: float) -> None:
        self.path = path
        self.started = started
        self.child_seconds = 0.0


class _ZoneAggregate:
    """Mutable per-path aggregate (single-writer: the owning thread)."""

    __slots__ = ("calls", "self_histogram", "cumulative_histogram")

    def __init__(self) -> None:
        self.calls = 0
        self.self_histogram = FixedBucketHistogram(PROFILE_BUCKET_EDGES)
        self.cumulative_histogram = FixedBucketHistogram(PROFILE_BUCKET_EDGES)


class _ThreadProfile:
    """One thread's zone stack plus its private aggregates."""

    __slots__ = ("stack", "aggregates")

    def __init__(self) -> None:
        self.stack: List[_Frame] = []
        self.aggregates: Dict[Tuple[str, ...], _ZoneAggregate] = {}


def _histogram_from_json(payload: Mapping[str, object]) -> HistogramSnapshot:
    return HistogramSnapshot(
        edges=tuple(float(edge) for edge in payload["edges"]),
        counts=tuple(int(count) for count in payload["counts"]),
        sum=float(payload["sum"]),
        min=None if payload["min"] is None else float(payload["min"]),
        max=None if payload["max"] is None else float(payload["max"]),
    )


@dataclass(frozen=True)
class ZoneStat:
    """One zone path's aggregate: call count plus two duration histograms."""

    path: Tuple[str, ...]
    calls: int
    self_seconds: HistogramSnapshot
    """Time spent in this zone excluding enclosed child zones."""
    cumulative_seconds: HistogramSnapshot
    """Wall time from zone entry to exit (children included)."""

    @property
    def name(self) -> str:
        return self.path[-1]

    @property
    def depth(self) -> int:
        return len(self.path) - 1

    def merge(self, other: "ZoneStat") -> "ZoneStat":
        if other.path != self.path:
            raise ObsError(
                f"cannot merge zone {other.path!r} into {self.path!r}"
            )
        return ZoneStat(
            path=self.path,
            calls=self.calls + other.calls,
            self_seconds=merge_histograms(
                (self.self_seconds, other.self_seconds)
            ),
            cumulative_seconds=merge_histograms(
                (self.cumulative_seconds, other.cumulative_seconds)
            ),
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "path": list(self.path),
            "calls": self.calls,
            "self_seconds": self.self_seconds.to_json(),
            "cumulative_seconds": self.cumulative_seconds.to_json(),
        }

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "ZoneStat":
        return cls(
            path=tuple(str(part) for part in payload["path"]),
            calls=int(payload["calls"]),
            self_seconds=_histogram_from_json(payload["self_seconds"]),
            cumulative_seconds=_histogram_from_json(
                payload["cumulative_seconds"]
            ),
        )


@dataclass(frozen=True)
class ProfileSnapshot:
    """An immutable zone tree: path-sorted stats, mergeable and archivable.

    Lexicographic path order is also preorder (a parent's tuple is a
    strict prefix of its children's), so rendering the sorted stats with
    depth-indentation *is* the tree view.  Call counts and histogram
    bucket counts merge by exact integer addition — snapshots from any
    number of threads, workers, or runs combine into the same tree
    regardless of grouping or order.
    """

    zones: Tuple[ZoneStat, ...]

    def __post_init__(self) -> None:
        paths = [stat.path for stat in self.zones]
        if paths != sorted(paths):
            raise ObsError("profile snapshots must be path-sorted")

    @property
    def is_empty(self) -> bool:
        return not self.zones

    def total_seconds(self) -> float:
        """Summed cumulative time of the root zones (depth 0)."""
        return sum(
            stat.cumulative_seconds.sum
            for stat in self.zones
            if stat.depth == 0
        )

    def zone(self, *path: str) -> Optional[ZoneStat]:
        """The stat at exactly ``path`` (None when absent)."""
        wanted = tuple(path)
        for stat in self.zones:
            if stat.path == wanted:
                return stat
        return None

    def merge(self, other: "ProfileSnapshot") -> "ProfileSnapshot":
        return merge_profiles((self, other))

    def to_json(self) -> Dict[str, object]:
        return {"zones": [stat.to_json() for stat in self.zones]}

    @classmethod
    def from_json(cls, payload: Mapping[str, object]) -> "ProfileSnapshot":
        return cls(
            zones=tuple(
                ZoneStat.from_json(entry) for entry in payload["zones"]
            )
        )

    @classmethod
    def empty(cls) -> "ProfileSnapshot":
        return cls(zones=())

    def collapsed_stack_lines(self) -> List[str]:
        """Brendan Gregg collapsed-stack lines: ``a;b;c <self-µs>``.

        Weights are integer self-time microseconds — the format flamegraph
        and speedscope both ingest.  Zones whose self time rounds to zero
        are kept (zero-weight frames are legal and preserve the tree).
        """
        return [
            ";".join(stat.path)
            + f" {int(round(stat.self_seconds.sum * 1_000_000))}"
            for stat in self.zones
        ]


def merge_profiles(snapshots: Iterable[ProfileSnapshot]) -> ProfileSnapshot:
    """Merge profile snapshots zone-by-zone (exact counts, any order)."""
    merged: Dict[Tuple[str, ...], ZoneStat] = {}
    for snapshot in snapshots:
        for stat in snapshot.zones:
            existing = merged.get(stat.path)
            merged[stat.path] = (
                stat if existing is None else existing.merge(stat)
            )
    return ProfileSnapshot(
        zones=tuple(merged[path] for path in sorted(merged))
    )


def render_zone_table(snapshot: ProfileSnapshot) -> str:
    """The human zone table: preorder tree with calls/cum/self columns."""
    if snapshot.is_empty:
        return "(no zones recorded)"
    total = snapshot.total_seconds()
    header = (
        f"{'zone':<40} {'calls':>9} {'cum(s)':>12} {'self(s)':>12} "
        f"{'self%':>7}"
    )
    lines = [header, "-" * len(header)]
    for stat in snapshot.zones:
        label = "  " * stat.depth + stat.name
        self_sum = stat.self_seconds.sum
        share = (self_sum / total * 100.0) if total > 0 else 0.0
        lines.append(
            f"{label:<40} {stat.calls:>9} "
            f"{stat.cumulative_seconds.sum:>12.6f} {self_sum:>12.6f} "
            f"{share:>6.1f}%"
        )
    lines.append(f"{'total (root zones)':<40} {'':>9} {total:>12.6f}")
    return "\n".join(lines)


class ZoneProfiler:
    """Aggregates zone timings per thread; snapshots merge the threads.

    Each thread that enters a zone gets its own stack and aggregate dict
    (registered under a lock on first touch — the enter/exit hot path is
    lock-free).  :meth:`snapshot` merges all threads' aggregates; take it
    after worker threads have joined for a complete tree.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._states: List[_ThreadProfile] = []
        self._local = threading.local()

    def _state(self) -> _ThreadProfile:
        state = getattr(self._local, "state", None)
        if state is None:
            state = _ThreadProfile()
            self._local.state = state
            with self._lock:
                self._states.append(state)
        return state

    def current_path(self) -> Tuple[str, ...]:
        """The calling thread's open zone path (empty at top level)."""
        stack = self._state().stack
        return stack[-1].path if stack else ()

    def enter(self, name: str) -> None:
        state = self._state()
        parent = state.stack[-1].path if state.stack else ()
        state.stack.append(_Frame(parent + (name,), clock_now()))

    def exit(self) -> None:
        state = self._state()
        frame = state.stack.pop()
        cumulative = clock_now() - frame.started
        self_seconds = cumulative - frame.child_seconds
        if self_seconds < 0.0:  # float jitter between two seam reads
            self_seconds = 0.0
        aggregate = state.aggregates.get(frame.path)
        if aggregate is None:
            aggregate = _ZoneAggregate()
            state.aggregates[frame.path] = aggregate
        aggregate.calls += 1
        aggregate.cumulative_histogram.record(cumulative)
        aggregate.self_histogram.record(self_seconds)
        if state.stack:
            state.stack[-1].child_seconds += cumulative

    def absorb(
        self, snapshot: ProfileSnapshot, prefix: Tuple[str, ...] = ()
    ) -> None:
        """Fold a shipped snapshot in, nesting it under ``prefix``.

        The parent absorbs pool-worker snapshots with its current zone
        path as the prefix, so worker-side zones appear as children of
        the zone that dispatched them.  Absorbed time is *not* added to
        any open frame's child time: the dispatching zone's self time
        already covers the wall-clock wait, while absorbed zones account
        the workers' own (possibly overlapping) seconds.
        """
        state = self._state()
        for stat in snapshot.zones:
            path = tuple(prefix) + stat.path
            aggregate = state.aggregates.get(path)
            if aggregate is None:
                aggregate = _ZoneAggregate()
                state.aggregates[path] = aggregate
            aggregate.calls += stat.calls
            aggregate.self_histogram.update(stat.self_seconds)
            aggregate.cumulative_histogram.update(stat.cumulative_seconds)

    def snapshot(self) -> ProfileSnapshot:
        """Merge every thread's aggregates into one immutable tree."""
        with self._lock:
            states = list(self._states)
        merged: Dict[Tuple[str, ...], ZoneStat] = {}
        for state in states:
            for path, aggregate in sorted(state.aggregates.items()):
                stat = ZoneStat(
                    path=path,
                    calls=aggregate.calls,
                    self_seconds=aggregate.self_histogram.snapshot(),
                    cumulative_seconds=(
                        aggregate.cumulative_histogram.snapshot()
                    ),
                )
                existing = merged.get(path)
                merged[path] = stat if existing is None else existing.merge(stat)
        return ProfileSnapshot(
            zones=tuple(merged[path] for path in sorted(merged))
        )


class _NullZone:
    """The shared no-op context manager handed out while profiling is off."""

    __slots__ = ()

    def __enter__(self) -> "_NullZone":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False


_NULL_ZONE = _NullZone()


class _ZoneContext:
    """The enabled-path context manager: enter/exit one named zone."""

    __slots__ = ("_profiler", "_name")

    def __init__(self, profiler: ZoneProfiler, name: str) -> None:
        self._profiler = profiler
        self._name = name

    def __enter__(self) -> "_ZoneContext":
        self._profiler.enter(self._name)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self._profiler.exit()
        return False


_active_profiler: Optional[ZoneProfiler] = None


def profile_zone(name: str) -> "ContextManager[object]":
    """``with profile_zone("simulate.verify"): ...`` — time one zone.

    With no profiler installed this is one global load, a ``None`` check,
    and a shared no-op context manager: no clock read, no allocation —
    cheap enough to leave in the hottest engine loops unconditionally.
    """
    profiler = _active_profiler
    if profiler is None:
        return _NULL_ZONE
    return _ZoneContext(profiler, name)


def active_profiler() -> Optional[ZoneProfiler]:
    """The installed profiler, or None when zone timing is off."""
    return _active_profiler


def set_profiler(profiler: Optional[ZoneProfiler]) -> Optional[ZoneProfiler]:
    """Install (or, with None, remove) the process-wide zone profiler.

    Returns the previous profiler; restore it in a ``finally`` — like the
    clock it reads through, the active profiler is process-global state.
    """
    global _active_profiler
    if profiler is not None and not isinstance(profiler, ZoneProfiler):
        raise ObsError(
            f"set_profiler() needs a ZoneProfiler or None, "
            f"got {type(profiler).__name__}"
        )
    previous = _active_profiler
    _active_profiler = profiler
    return previous


class profiling:
    """``with profiling() as profiler:`` — enable zones for one block.

    Installs a fresh :class:`ZoneProfiler`, restores whatever was active
    before on exit; read ``profiler.snapshot()`` inside or after the block.
    """

    __slots__ = ("profiler", "_previous")

    def __init__(self) -> None:
        self.profiler = ZoneProfiler()
        self._previous: Optional[ZoneProfiler] = None

    def __enter__(self) -> ZoneProfiler:
        self._previous = set_profiler(self.profiler)
        return self.profiler

    def __exit__(self, exc_type, exc, tb) -> bool:
        set_profiler(self._previous)
        return False
