"""Algorithm showdown: the paper's algorithms vs their ablations, side by side.

For growing instance sizes the script measures, on the same random workloads,

* the biased-coin randomized algorithm of the paper (``Rand``),
* the unbiased-coin ablation (fair coin instead of the size-proportional one),
* the deterministic "always move the smaller component" rule,
* the deterministic closest-to-``π_0`` algorithm (``Det``),

and reports their mean competitive ratio against the offline optimum, next to
the theoretical bounds.  This is the empirical counterpart of the design
choice called out in Figure 1: the *biased* coin is what turns a linear ratio
into a logarithmic one.

Run with::

    python examples/algorithm_showdown.py [cliques|lines]
"""

from __future__ import annotations

import random
import sys

from repro import (
    DeterministicClosestLearner,
    MoveSmallerCliqueLearner,
    MoveSmallerLineLearner,
    OnlineMinLAInstance,
    RandomizedCliqueLearner,
    RandomizedLineLearner,
    UnbiasedCoinCliqueLearner,
    UnbiasedCoinLineLearner,
    det_competitive_bound,
    offline_optimum_bounds,
    rand_cliques_ratio_bound,
    rand_lines_ratio_bound,
    random_clique_merge_sequence,
    random_line_sequence,
    run_online,
    run_trials,
)


def contestants(kind: str):
    if kind == "cliques":
        return {
            "Rand (paper)": RandomizedCliqueLearner,
            "unbiased coin": UnbiasedCoinCliqueLearner,
            "move smaller": MoveSmallerCliqueLearner,
        }
    return {
        "Rand (paper)": RandomizedLineLearner,
        "unbiased coin": UnbiasedCoinLineLearner,
        "move smaller": MoveSmallerLineLearner,
    }


def main(kind: str = "cliques", trials: int = 20, seed: int = 0) -> None:
    if kind not in ("cliques", "lines"):
        raise SystemExit("usage: python examples/algorithm_showdown.py [cliques|lines]")
    sizes = (12, 24, 48)
    names = list(contestants(kind)) + ["Det (exact ≤ 12 nodes)"]
    print(f"=== {kind}: mean competitive ratio vs offline optimum ===")
    header = f"{'n':>5} " + " ".join(f"{name:>22}" for name in names)
    bound_name = "4·H_n" if kind == "cliques" else "8·H_n"
    print(header + f" {bound_name:>10} {'2n-2':>8}")
    print("-" * len(header))

    for size in sizes:
        rng = random.Random((seed, size).__repr__())
        if kind == "cliques":
            sequence = random_clique_merge_sequence(size, rng)
            bound = rand_cliques_ratio_bound(size)
        else:
            sequence = random_line_sequence(size, rng)
            bound = rand_lines_ratio_bound(size)
        instance = OnlineMinLAInstance.with_random_start(sequence, rng)
        opt = offline_optimum_bounds(instance)
        denominator = max(opt.upper, 1)

        cells = []
        for name, factory in contestants(kind).items():
            results = run_trials(factory, instance, num_trials=trials, seed=seed)
            mean_cost = sum(result.total_cost for result in results) / len(results)
            cells.append(f"{mean_cost / denominator:>22.2f}")
        # Det with the exact closest-MinLA search is only run on small instances
        # (the subset DP is exponential in the number of components).
        if size <= 12:
            det_cost = run_online(DeterministicClosestLearner(), instance).total_cost
            cells.append(f"{det_cost / denominator:>22.2f}")
        else:
            cells.append(f"{'—':>22}")
        print(f"{size:>5} " + " ".join(cells) + f" {bound:>10.1f} {det_competitive_bound(size):>8}")

    print()
    print("On random reveal orders every policy sits far below the bounds, and the")
    print("greedy 'move smaller' rule is even slightly cheaper per step — its weakness")
    print("is adversarial: an adversary that knows which side will move can force a")
    print("linear ratio, which is exactly what the biased coin of Figure 1 prevents")
    print("(run examples/adversarial_lower_bounds.py to see the bounds bind).")


if __name__ == "__main__":
    selected = sys.argv[1] if len(sys.argv) > 1 else "cliques"
    main(selected)
