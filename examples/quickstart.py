"""Quickstart: learn the arrangement of a clique workload online.

This example walks through the library's core loop in a few lines:

1. generate a random clique-merge reveal sequence (the "unknown" communication
   pattern that is revealed piece by piece),
2. start from a random initial permutation,
3. run the paper's randomized algorithm (``Rand``, Section 3) and the
   deterministic baseline (``Det``, Section 2),
4. compare their total number of adjacent swaps against the offline optimum
   and against the theoretical guarantees (``4 H_n`` and ``2n − 2``).

Run with::

    python examples/quickstart.py [n] [seed]
"""

from __future__ import annotations

import random
import sys

from repro import (
    DeterministicClosestLearner,
    OnlineMinLAInstance,
    RandomizedCliqueLearner,
    det_competitive_bound,
    offline_optimum_bounds,
    rand_cliques_ratio_bound,
    random_clique_merge_sequence,
    run_online,
    run_trials,
)


def main(num_nodes: int = 24, seed: int = 0) -> None:
    rng = random.Random(seed)

    # 1. The hidden pattern: one big clique revealed through random merges.
    sequence = random_clique_merge_sequence(num_nodes, rng)
    print(f"workload: {num_nodes} nodes, {len(sequence)} clique-merge reveals")

    # 2. The initial placement the algorithms start from.
    instance = OnlineMinLAInstance.with_random_start(sequence, rng)

    # 3a. One run of the randomized algorithm.
    single = run_online(RandomizedCliqueLearner(), instance, rng=random.Random(seed + 1))
    print(f"Rand (single run) paid {single.total_cost} adjacent swaps")

    # 3b. Its expected cost over independent trials.
    trials = run_trials(RandomizedCliqueLearner, instance, num_trials=25, seed=seed)
    mean_cost = sum(result.total_cost for result in trials) / len(trials)

    # 3c. The deterministic baseline.
    det = run_online(DeterministicClosestLearner(), instance)

    # 4. The offline optimum bracket and the paper's guarantees.
    opt = offline_optimum_bounds(instance)
    print(f"offline optimum: between {opt.lower} and {opt.upper} swaps")
    print()
    print(f"{'algorithm':<22} {'cost':>10} {'ratio vs OPT':>14} {'paper bound':>12}")
    print("-" * 62)
    denominator = max(opt.upper, 1)
    print(
        f"{'Rand (mean of 25)':<22} {mean_cost:>10.1f} {mean_cost / denominator:>14.2f} "
        f"{rand_cliques_ratio_bound(num_nodes):>12.2f}"
    )
    print(
        f"{'Det':<22} {det.total_cost:>10} {det.total_cost / denominator:>14.2f} "
        f"{det_competitive_bound(num_nodes):>12.2f}"
    )
    print()
    print("Both ratios sit far below their worst-case bounds on random reveal orders;")
    print("the adversarial examples (see examples/adversarial_lower_bounds.py) show")
    print("where the bounds actually bind.")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    main(n, seed)
