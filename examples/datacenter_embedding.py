"""Case study: demand-aware virtual network embedding on a linear datacenter.

This is the scenario that motivates the paper (Section 1.2): virtual machines
sit in a row of hosts, traffic between them is only learned as requests
arrive, and migrating a VM to a neighbouring host costs one swap.  The script
replays two traffic patterns — tenant groups (cliques) and processing
pipelines (lines) — under three controllers:

* ``static``       — never migrate,
* ``oracle``       — knows the final pattern and migrates once up front,
* ``demand-aware`` — the paper's online algorithms migrate as the pattern is
  revealed.

The output shows the migration/communication trade-off: demand-aware
re-embedding pays a bounded migration cost to cut the communication cost to a
fraction of the static embedding's.

Run with::

    python examples/datacenter_embedding.py [requests] [seed]
"""

from __future__ import annotations

import random
import sys

from repro.core.permutation import random_arrangement
from repro.core.rand_cliques import RandomizedCliqueLearner
from repro.core.rand_lines import RandomizedLineLearner
from repro.vnet import (
    DemandAwareController,
    Embedding,
    LinearDatacenter,
    OracleController,
    StaticController,
    pipeline_traffic,
    tenant_traffic,
)


def run_scenario(title, trace, learner_factory, seed):
    datacenter = LinearDatacenter(trace.num_nodes)
    rng = random.Random(seed)
    initial = Embedding(datacenter, random_arrangement(trace.virtual_nodes, rng))

    controllers = [
        ("static", StaticController(datacenter)),
        ("oracle (offline)", OracleController(datacenter)),
        ("demand-aware (Rand)", DemandAwareController(datacenter, learner_factory)),
    ]
    print(f"\n=== {title}: {trace.num_nodes} VMs, {trace.num_requests} requests ===")
    print(f"{'controller':<22} {'migration':>12} {'communication':>15} {'total':>12}")
    print("-" * 64)
    for name, controller in controllers:
        report = controller.run(trace, initial_embedding=initial, rng=random.Random(seed + 7))
        print(
            f"{name:<22} {report.migration_cost:>12.0f} {report.communication_cost:>15.0f} "
            f"{report.total_cost:>12.0f}"
        )


def main(num_requests: int = 2000, seed: int = 0) -> None:
    rng = random.Random(seed)

    # Four tenants of eight VMs each, all-to-all traffic inside a tenant.
    tenants = tenant_traffic([8, 8, 8, 8], num_requests, rng)
    run_scenario("tenant groups (clique pattern)", tenants, RandomizedCliqueLearner, seed)

    # Four pipelines of eight stages each, neighbour-to-neighbour traffic.
    pipelines = pipeline_traffic([8, 8, 8, 8], num_requests, rng)
    run_scenario("pipelines (line pattern)", pipelines, RandomizedLineLearner, seed)

    print()
    print("Demand-aware re-embedding approaches the oracle's communication cost")
    print("while paying only the logarithmically-competitive migration overhead")
    print("guaranteed by Theorems 2 and 8.")


if __name__ == "__main__":
    requests = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    main(requests, seed)
