"""The lower-bound constructions of Section 5, run against the actual algorithms.

Two adversaries:

* **Theorem 16** (deterministic lower bound): an adaptive adversary on a line
  instance that watches where ``Det`` parks the middle node and always grows
  the revealed path on that side, forcing ``Det`` to drag the node across the
  whole component over and over.  ``Det``'s competitive ratio grows linearly
  with ``n``; the randomized algorithm run through the very same adversary
  stays logarithmic.

* **Theorem 15** (randomized lower bound): the Yao-principle binary-tree
  request distribution under which *every* online algorithm pays
  ``Ω(n² log n)`` in expectation while the offline optimum pays ``O(n²)``.
  The measured ratio of the randomized algorithm grows like ``log n``,
  matching its ``8 ln n`` guarantee from the other side.

Run with::

    python examples/adversarial_lower_bounds.py
"""

from __future__ import annotations

import math
import random

from repro.adversary import run_line_adversary, tree_adversary_instance
from repro.core.det import DeterministicClosestLearner
from repro.core.opt import offline_optimum_bounds
from repro.core.rand_lines import RandomizedLineLearner
from repro.core.simulator import run_trials


def theorem16_demo() -> None:
    print("=== Theorem 16: adaptive line adversary vs Det (and vs Rand) ===")
    print(f"{'n':>5} {'Det cost':>10} {'OPT':>6} {'Det ratio':>10} {'Rand ratio':>11}")
    print("-" * 48)
    for size in (11, 21, 41, 81):
        det_result = run_line_adversary(DeterministicClosestLearner(), size)
        rand_ratios = []
        for trial in range(5):
            rand_result = run_line_adversary(
                RandomizedLineLearner(), size, rng=random.Random(trial)
            )
            rand_ratios.append(rand_result.ratio_lower_estimate)
        print(
            f"{size:>5} {det_result.total_cost:>10} {det_result.opt_bounds.upper:>6} "
            f"{det_result.ratio_lower_estimate:>10.2f} "
            f"{sum(rand_ratios) / len(rand_ratios):>11.2f}"
        )
    print("Det's ratio grows linearly with n; Rand's stays near its 8 ln n bound.\n")


def theorem15_demo() -> None:
    print("=== Theorem 15: binary-tree request distribution (any algorithm) ===")
    print(f"{'n':>5} {'E[Rand cost]':>13} {'OPT':>8} {'ratio':>8} {'ratio/log2(n)':>14}")
    print("-" * 54)
    for size in (16, 32, 64, 128):
        rng = random.Random(size)
        instance, _ = tree_adversary_instance(size, rng)
        opt = offline_optimum_bounds(instance)
        results = run_trials(RandomizedLineLearner, instance, num_trials=8, seed=size)
        mean_cost = sum(result.total_cost for result in results) / len(results)
        ratio = mean_cost / max(opt.upper, 1)
        print(
            f"{size:>5} {mean_cost:>13.0f} {opt.upper:>8} {ratio:>8.2f} "
            f"{ratio / math.log2(size):>14.3f}"
        )
    print("The ratio grows like log n — no online algorithm can do better (Theorem 15).")


if __name__ == "__main__":
    theorem16_demo()
    theorem15_demo()
