"""Deep dive: watching the analysis of the paper happen on a concrete run.

The proofs of Theorems 6 and 14 charge the algorithm's expected cost to pairs
of nodes via harmonic sums over each node's *merge profile* — the sizes of
the components its own component successively merges with.  This example
makes those objects visible on a concrete workload:

* the merge profile and Lemma 5 / Lemma 13 sums of the worst node (how much
  of the ``H_n`` budget this particular workload can consume),
* the drift ``|L_{π0} \\ L_{π_i}|`` of the arrangement over time for ``Rand``
  and for ``Det``,
* the per-step expected cost of ``Rand`` over many trials, and
* the resulting cost distribution, compared with the ``4 H_n · OPT`` budget.

Run with::

    python examples/analysis_deep_dive.py [n] [seed]
"""

from __future__ import annotations

import random
import sys

from repro.core.analysis import (
    cost_distribution,
    disagreement_trajectory,
    expected_per_step_costs,
    worst_harmonic_certificate,
)
from repro.core.bounds import rand_cliques_cost_bound
from repro.core.det import DeterministicClosestLearner
from repro.core.instance import OnlineMinLAInstance
from repro.core.opt import offline_optimum_bounds
from repro.core.rand_cliques import RandomizedCliqueLearner
from repro.core.simulator import run_online, run_trials
from repro.experiments.charts import horizontal_bar_chart, sparkline
from repro.graphs.generators import random_clique_merge_sequence


def main(num_nodes: int = 24, seed: int = 0) -> None:
    rng = random.Random(seed)
    sequence = random_clique_merge_sequence(num_nodes, rng, size_biased=True)
    instance = OnlineMinLAInstance.with_random_start(sequence, rng)
    opt = offline_optimum_bounds(instance)

    print(f"workload: {num_nodes} nodes, {len(sequence)} merges, OPT in [{opt.lower}, {opt.upper}]")
    print()

    # --- 1. The harmonic certificate of the worst node --------------------
    certificate = worst_harmonic_certificate(sequence)
    print("harmonic certificate of the worst node")
    print(f"  node                    : {certificate.node}")
    print(f"  merge profile           : {list(certificate.profile)}")
    print(f"  Lemma 5 sum (moving)    : {certificate.lemma5_value:.3f}")
    print(f"  Lemma 13 sums (rearr.)  : {certificate.lemma13_square_value:.3f} / "
          f"{certificate.lemma13_product_value:.3f}")
    print(f"  harmonic budget H_n     : {certificate.harmonic_budget:.3f} "
          f"(utilization {certificate.lemma5_utilization:.0%})")
    print()

    # --- 2. Drift from pi0 over time --------------------------------------
    rand_run = run_online(
        RandomizedCliqueLearner(), instance, rng=random.Random(seed + 1), record_trajectory=True
    )
    det_run = run_online(DeterministicClosestLearner(), instance, record_trajectory=True)
    rand_drift = disagreement_trajectory(rand_run, instance.initial_arrangement)
    det_drift = disagreement_trajectory(det_run, instance.initial_arrangement)
    print("drift |L_pi0 \\ L_pi_i| over the run (sparklines, left = start)")
    print(f"  Rand : {sparkline(rand_drift)}  (peak {max(rand_drift)})")
    print(f"  Det  : {sparkline(det_drift)}  (peak {max(det_drift)}, never exceeds OPT ub {opt.upper})")
    print()

    # --- 3. Per-step expected cost of Rand ---------------------------------
    trials = run_trials(RandomizedCliqueLearner, instance, num_trials=30, seed=seed)
    per_step = expected_per_step_costs(trials)
    print("expected cost of each reveal step (Rand, 30 trials)")
    print(f"  {sparkline(per_step)}")
    print(
        f"  cheapest step averages {min(per_step):.1f} swaps, the most expensive "
        f"{max(per_step):.1f} — expensive steps are the merges of two already-large components"
    )
    print()

    # --- 4. Cost distribution vs the theoretical budget --------------------
    distribution = cost_distribution(trials)
    budget = rand_cliques_cost_bound(num_nodes, max(opt.upper, 1))
    print("total cost over 30 trials vs the Theorem 6 budget")
    print(
        horizontal_bar_chart(
            ["mean cost", "worst trial", "4·H_n·OPT budget"],
            [distribution.total.mean, distribution.total.maximum, budget],
        )
    )
    print()
    print(f"mean ± std : {distribution.total.mean:.1f} ± {distribution.total.std:.1f}")
    print(f"95% CI     : [{distribution.total.ci_low:.1f}, {distribution.total.ci_high:.1f}]")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 0
    main(n, seed)
